package shard

import (
	"sync"
	"time"
)

// BreakerState enumerates the circuit-breaker states. The zero value is
// Closed: a fresh replica is assumed healthy until it proves otherwise.
type BreakerState int32

const (
	// BreakerClosed: requests flow normally; consecutive failures are
	// counted and trip the breaker at the configured threshold.
	BreakerClosed BreakerState = iota
	// BreakerHalfOpen: the cooldown elapsed and exactly one trial
	// request is allowed through; its outcome decides between Closed
	// and another Open period.
	BreakerHalfOpen
	// BreakerOpen: the replica exceeded the failure threshold and is
	// skipped by routing until the cooldown elapses (or a successful
	// health probe resets the breaker early).
	BreakerOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerHalfOpen:
		return "half_open"
	case BreakerOpen:
		return "open"
	}
	return "unknown"
}

// breaker is a consecutive-failure circuit breaker guarding one
// replica. It is deliberately pessimistic about per-query traffic and
// optimistic about health probes: query failures accumulate toward the
// threshold, while one successful CheckHealth (reset) closes the
// breaker outright — the background prober is the cheap path back into
// rotation for a recovered replica.
//
// State machine:
//
//	Closed --(threshold consecutive failures)--> Open
//	Open --(cooldown elapsed, next allow())--> HalfOpen (one trial)
//	HalfOpen --(trial succeeds)--> Closed
//	HalfOpen --(trial fails)--> Open (fresh cooldown)
//	any --(reset: successful health probe)--> Closed
//
// The half-open trial slot is claimed by allow() and released by the
// next onSuccess/onFailure, so concurrent legs cannot stampede a
// barely-recovered replica.
type breaker struct {
	mu        sync.Mutex
	state     BreakerState  // guarded by mu
	fails     int           // guarded by mu; consecutive failures while Closed
	threshold int           // set before the replica set is shared; read-only after
	cooldown  time.Duration // set before the replica set is shared; read-only after
	openedAt  time.Time     // guarded by mu
	trialOut  bool          // guarded by mu; a half-open trial request is in flight
}

// allow reports whether routing may send this replica a request now.
// It transitions Open → HalfOpen when the cooldown has elapsed, and in
// HalfOpen claims the single trial slot for the caller: trial is true
// when this call claimed it, and the claimant MUST eventually call
// exactly one of onSuccess, onFailure, or releaseTrial.
func (b *breaker) allow() (ok, trial bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true, false
	case BreakerOpen:
		if time.Since(b.openedAt) < b.cooldown {
			return false, false
		}
		b.state = BreakerHalfOpen
		b.trialOut = true
		return true, true
	case BreakerHalfOpen:
		if b.trialOut {
			return false, false
		}
		b.trialOut = true
		return true, true
	}
	return false, false
}

// releaseTrial returns an unused half-open trial slot: the claiming
// attempt was canceled (a hedge loser) before it could prove anything
// about the replica, so another attempt may try.
func (b *breaker) releaseTrial() {
	b.mu.Lock()
	b.trialOut = false
	b.mu.Unlock()
}

// onSuccess records a request that completed successfully.
func (b *breaker) onSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails = 0
	b.trialOut = false
	b.state = BreakerClosed
}

// onFailure records a request that failed for a reason attributable to
// the replica (not a caller-side cancellation).
func (b *breaker) onFailure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerHalfOpen:
		// The trial failed: back to a fresh cooldown.
		b.trialOut = false
		b.state = BreakerOpen
		b.openedAt = time.Now()
	case BreakerClosed:
		b.fails++
		if b.fails >= b.threshold {
			b.state = BreakerOpen
			b.openedAt = time.Now()
		}
	case BreakerOpen:
		// A fail-open request (no alternative replica) failed while the
		// breaker was already open; re-arm the cooldown so a steady
		// failure stream keeps the replica out of preferred rotation.
		b.openedAt = time.Now()
	}
}

// reset force-closes the breaker: a successful health probe proved the
// replica is serving again, no trial traffic needed.
func (b *breaker) reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails = 0
	b.trialOut = false
	b.state = BreakerClosed
}

// current returns the state for metrics.
func (b *breaker) current() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
