package shard

import (
	"sync/atomic"
	"time"
)

// LatencyBucketsMS are the upper bounds (milliseconds) of the per-shard
// request-latency histograms, matching the server's request histogram
// bounds so shard and frontend latencies land on comparable axes.
var LatencyBucketsMS = [...]float64{0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000}

// latencyHist is a fixed-bucket latency histogram with lock-free
// observation; the final bucket is the +Inf overflow.
type latencyHist struct {
	counts [len(LatencyBucketsMS) + 1]atomic.Int64
	sumNS  atomic.Int64
}

func (h *latencyHist) observe(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	i := 0
	for i < len(LatencyBucketsMS) && ms > LatencyBucketsMS[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sumNS.Add(int64(d))
}

func (h *latencyHist) load() (buckets [len(LatencyBucketsMS) + 1]int64, count, sumNS int64) {
	for i := range h.counts {
		buckets[i] = h.counts[i].Load()
		count += buckets[i]
	}
	return buckets, count, h.sumNS.Load()
}

// Metrics is a point-in-time snapshot of the coordinator's shard-level
// counters, consumed by the server's /metrics exposition.
type Metrics struct {
	// PartialResults counts queries that returned with at least one
	// shard unanswered.
	PartialResults int64
	// Shards holds one entry per shard in fan-out order.
	Shards []ShardMetrics
}

// ShardMetrics is one shard's cumulative request accounting.
type ShardMetrics struct {
	// Shard is the shard's name (index directory or URL); it is
	// configuration, never request-derived, so it is safe as a metric
	// label value.
	Shard    string
	BuildID  string
	Requests int64
	Errors   int64
	// LatencyBuckets are per-bucket (non-cumulative) observation counts
	// aligned with LatencyBucketsMS; the last entry is +Inf.
	LatencyBuckets [len(LatencyBucketsMS) + 1]int64
	LatencyCount   int64
	LatencySumNS   int64
	// ReplicaSet is the replica-level breakdown when this shard is
	// served by a ReplicaSet; nil for single-replica shards.
	ReplicaSet *ReplicaSetMetrics
}

// ReplicaSetMetrics is one replica group's resilience accounting.
type ReplicaSetMetrics struct {
	// HedgeWins counts legs where the speculative second attempt
	// answered before the first.
	HedgeWins int64
	// BudgetDenied counts retries and hedges suppressed by an empty
	// retry-token bucket.
	BudgetDenied int64
	// Replicas holds one entry per replica in configuration order.
	Replicas []ReplicaMetrics
}

// ReplicaMetrics is one replica's attempt accounting and routing
// state. Replica names come from configuration, never from requests,
// so they are safe as metric label values.
type ReplicaMetrics struct {
	Replica  string
	BuildID  string
	Requests int64 // every attempt launched at this replica
	Errors   int64 // attempts that failed (cancellations excluded)
	Retries  int64 // attempts that were retries of a failed attempt
	Hedges   int64 // attempts that were speculative hedges
	// Breaker is the replica's current circuit-breaker state.
	Breaker BreakerState
	// Quarantined reports the replica is excluded from routing because
	// its build id or index metadata diverges from its group.
	Quarantined bool
}

// ShardMetrics snapshots the coordinator's per-shard counters. The
// server's /metrics handler discovers this method on its Backend to
// render the ndss_shard_* metric families.
func (c *Coordinator) ShardMetrics() Metrics {
	out := Metrics{
		PartialResults: c.partials.Load(),
		Shards:         make([]ShardMetrics, len(c.slots)),
	}
	for i, sl := range c.slots {
		buckets, count, sumNS := sl.lat.load()
		out.Shards[i] = ShardMetrics{
			Shard:          sl.client.Name(),
			BuildID:        sl.client.BuildID(),
			Requests:       sl.requests.Load(),
			Errors:         sl.errors.Load(),
			LatencyBuckets: buckets,
			LatencyCount:   count,
			LatencySumNS:   sumNS,
		}
		if rp, ok := sl.client.(interface{ ReplicaMetrics() ReplicaSetMetrics }); ok {
			rm := rp.ReplicaMetrics()
			out.Shards[i].ReplicaSet = &rm
		}
	}
	return out
}
