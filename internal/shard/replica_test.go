package shard_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"ndss/internal/search"
	"ndss/internal/shard"
)

// Behavioral tests for the ReplicaSet resilience layer over stub
// replicas. Routing is deterministic under test configs: with idle
// replicas power-of-two-choices tie-breaks to the lower index, so the
// primary always lands on replica 0.

// replicaStub builds a stub replica named name sharing the group's
// build id and corpus slice.
func replicaStub(name string, matches ...search.Match) *stubShard {
	s := newStubShard(name, 10, matches...)
	s.build = "build-1"
	return s
}

// testReplicaCfg is fast and deterministic: no hedging unless a test
// opts in, near-zero backoff, fixed seed.
func testReplicaCfg() shard.ReplicaConfig {
	return shard.ReplicaConfig{
		MaxRetries:      2,
		RetryBudget:     0.5,
		RetryBurst:      100,
		BackoffBase:     time.Microsecond,
		BackoffMax:      10 * time.Microsecond,
		HedgeDelayMin:   -1, // off by default; hedge tests override
		BreakerFailures: 100,
		BreakerCooldown: time.Hour,
		Seed:            1,
	}
}

func newReplicaSet(t *testing.T, cfg shard.ReplicaConfig, reps ...*stubShard) *shard.ReplicaSet {
	t.Helper()
	clients := make([]shard.ShardClient, len(reps))
	for i, s := range reps {
		clients[i] = s
	}
	rs, err := shard.NewReplicaSet("group", clients, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rs.Close() })
	return rs
}

func TestReplicaRetryOnTransientFailure(t *testing.T) {
	bad := replicaStub("r0")
	bad.err = &shard.RemoteError{Shard: "r0", Status: 503, Msg: "draining"}
	good := replicaStub("r1", search.Match{TextID: 4, Start: 0, End: 8, Collisions: 6})

	rs := newReplicaSet(t, testReplicaCfg(), bad, good)
	got, st, err := rs.SearchContext(context.Background(), []uint32{1, 2}, search.Options{Theta: 0.5})
	if err != nil {
		t.Fatalf("transient failure with a healthy replica left: %v", err)
	}
	if len(got) != 1 || got[0].TextID != 4 {
		t.Fatalf("matches = %+v, want replica r1's text 4", got)
	}
	if len(st.Attempts) != 2 {
		t.Fatalf("attempts = %+v, want primary + retry", st.Attempts)
	}
	a0, a1 := st.Attempts[0], st.Attempts[1]
	if a0.Replica != "r0" || a0.Err == "" || a0.Hedge {
		t.Fatalf("primary attempt = %+v, want failed non-hedge on r0", a0)
	}
	if a1.Replica != "r1" || a1.Err != "" || a1.Attempt != 1 {
		t.Fatalf("retry attempt = %+v, want success on the other replica", a1)
	}

	m := rs.ReplicaMetrics()
	r0, r1 := m.Replicas[0], m.Replicas[1]
	if r0.Requests != 1 || r0.Errors != 1 || r0.Retries != 0 {
		t.Errorf("r0 metrics = %+v, want 1 request, 1 error", r0)
	}
	if r1.Requests != 1 || r1.Errors != 0 || r1.Retries != 1 {
		t.Errorf("r1 metrics = %+v, want 1 request counted as a retry", r1)
	}
}

func TestReplicaNonRetryableErrorFailsFast(t *testing.T) {
	bad := replicaStub("r0")
	bad.err = errors.New("theta out of range") // request-level: identical everywhere
	good := replicaStub("r1", search.Match{TextID: 1, Collisions: 5})

	rs := newReplicaSet(t, testReplicaCfg(), bad, good)
	_, _, err := rs.SearchContext(context.Background(), []uint32{1}, search.Options{Theta: 0.5})
	if err == nil || good.calls.Load() != 0 {
		t.Fatalf("non-retryable error must fail without burning attempts: err=%v, r1 calls=%d",
			err, good.calls.Load())
	}
}

func TestReplicaRetriesExhausted(t *testing.T) {
	r0 := replicaStub("r0")
	r0.err = &shard.RemoteError{Shard: "r0", Status: 503, Msg: "down"}
	r1 := replicaStub("r1")
	r1.err = &shard.RemoteError{Shard: "r1", Status: 503, Msg: "down"}

	rs := newReplicaSet(t, testReplicaCfg(), r0, r1)
	_, st, err := rs.SearchContext(context.Background(), []uint32{1}, search.Options{Theta: 0.5})
	var re *shard.RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("all replicas failing: err = %v, want the last RemoteError", err)
	}
	// MaxRetries 2: primary + 2 retries, every attempt recorded even
	// though the leg failed.
	if st == nil || len(st.Attempts) != 3 {
		t.Fatalf("failed leg attempts = %+v, want 3 recorded", st)
	}
	for i, a := range st.Attempts {
		if a.Err == "" || a.Attempt != i {
			t.Errorf("attempt %d = %+v, want ordered failures", i, a)
		}
	}
}

func TestReplicaHedgeWinsOnSlowPrimary(t *testing.T) {
	slow := replicaStub("r0")
	slow.hook = func(ctx context.Context, call int64) ([]search.Match, *search.Stats, error) {
		<-ctx.Done() // park until the hedge wins and we're canceled
		return nil, nil, ctx.Err()
	}
	fast := replicaStub("r1", search.Match{TextID: 2, Start: 0, End: 8, Collisions: 7})

	cfg := testReplicaCfg()
	cfg.HedgeDelayMin = 2 * time.Millisecond
	rs := newReplicaSet(t, cfg, slow, fast)
	got, st, err := rs.SearchContext(context.Background(), []uint32{1}, search.Options{Theta: 0.5})
	if err != nil {
		t.Fatalf("hedged query: %v", err)
	}
	if len(got) != 1 || got[0].TextID != 2 {
		t.Fatalf("matches = %+v, want the fast replica's answer", got)
	}
	if len(st.Attempts) != 2 {
		t.Fatalf("attempts = %+v, want primary + hedge", st.Attempts)
	}
	var sawHedgeWin, sawCanceledPrimary bool
	for _, a := range st.Attempts {
		if a.Hedge && a.Err == "" && a.Replica == "r1" {
			sawHedgeWin = true
		}
		if !a.Hedge && a.Replica == "r0" && a.Err == "canceled" {
			sawCanceledPrimary = true
		}
	}
	if !sawHedgeWin || !sawCanceledPrimary {
		t.Fatalf("attempts = %+v, want a winning hedge on r1 and a canceled primary on r0", st.Attempts)
	}
	m := rs.ReplicaMetrics()
	if m.HedgeWins != 1 || m.Replicas[1].Hedges != 1 {
		t.Errorf("metrics hedge_wins=%d r1.hedges=%d, want 1/1", m.HedgeWins, m.Replicas[1].Hedges)
	}
	// The canceled primary must not count as a replica error.
	if m.Replicas[0].Errors != 0 {
		t.Errorf("canceled primary counted as error: %+v", m.Replicas[0])
	}
}

func TestReplicaBreakerRoutesAroundAndProbeRecovers(t *testing.T) {
	bad := replicaStub("r0")
	bad.err = &shard.RemoteError{Shard: "r0", Status: 503, Msg: "down"}
	good := replicaStub("r1", search.Match{TextID: 1, Collisions: 5})

	cfg := testReplicaCfg()
	cfg.BreakerFailures = 2
	rs := newReplicaSet(t, cfg, bad, good)
	ctx := context.Background()
	// Two failing queries trip r0's breaker (each query fails once on r0
	// and succeeds on r1 via retry — zero client-visible errors).
	for i := 0; i < 2; i++ {
		if _, _, err := rs.SearchContext(ctx, []uint32{1}, search.Options{Theta: 0.5}); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	m := rs.ReplicaMetrics()
	if m.Replicas[0].Breaker != shard.BreakerOpen {
		t.Fatalf("r0 breaker = %v after %d failures, want open", m.Replicas[0].Breaker, 2)
	}
	// With the breaker open, traffic skips r0 entirely.
	before := bad.calls.Load()
	for i := 0; i < 5; i++ {
		if _, _, err := rs.SearchContext(ctx, []uint32{1}, search.Options{Theta: 0.5}); err != nil {
			t.Fatalf("query with open breaker: %v", err)
		}
	}
	if bad.calls.Load() != before {
		t.Fatalf("open breaker leaked %d requests to r0", bad.calls.Load()-before)
	}
	// The replica recovers; a health probe resets the breaker without
	// waiting out the (1h) cooldown.
	bad.err = nil
	bad.matches = good.matches
	if err := rs.CheckHealth(ctx); err != nil {
		t.Fatal(err)
	}
	if st := rs.ReplicaMetrics().Replicas[0].Breaker; st != shard.BreakerClosed {
		t.Fatalf("r0 breaker after successful probe = %v, want closed", st)
	}
	if _, _, err := rs.SearchContext(ctx, []uint32{1}, search.Options{Theta: 0.5}); err != nil {
		t.Fatal(err)
	}
	if bad.calls.Load() == before {
		t.Fatal("recovered replica took no traffic after the probe reset")
	}
}

func TestReplicaQuarantineOnBuildMismatch(t *testing.T) {
	r0 := replicaStub("r0", search.Match{TextID: 1, Collisions: 5})
	r1 := replicaStub("r1", search.Match{TextID: 9, Collisions: 9}) // diverging answer
	r2 := replicaStub("r2", search.Match{TextID: 1, Collisions: 5})
	r1.build = "build-2" // mid-rollout: r1 runs a different index build

	rs := newReplicaSet(t, testReplicaCfg(), r0, r1, r2)
	m := rs.ReplicaMetrics()
	if m.Replicas[1].Quarantined != true || m.Replicas[0].Quarantined || m.Replicas[2].Quarantined {
		t.Fatalf("quarantine flags = %+v, want only the minority build quarantined", m.Replicas)
	}
	if rs.BuildID() != "build-1" {
		t.Fatalf("group build = %q, want the majority build-1", rs.BuildID())
	}
	ctx := context.Background()
	for i := 0; i < 8; i++ {
		got, _, err := rs.SearchContext(ctx, []uint32{1}, search.Options{Theta: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 1 || got[0].TextID != 1 {
			t.Fatalf("query %d: got %+v — a quarantined build's answer leaked into results", i, got)
		}
	}
	if r1.calls.Load() != 0 {
		t.Fatalf("quarantined replica served %d queries, want 0", r1.calls.Load())
	}
	// The rollout finishes: r1 now reports the group build and a health
	// probe lets it rejoin.
	r1.build = "build-1"
	r1.matches = r0.matches
	if err := rs.CheckHealth(ctx); err != nil {
		t.Fatal(err)
	}
	if rs.ReplicaMetrics().Replicas[1].Quarantined {
		t.Fatal("replica still quarantined after converging on the group build")
	}
}

func TestReplicaRetryBudgetExhausts(t *testing.T) {
	bad := replicaStub("r0")
	bad.err = &shard.RemoteError{Shard: "r0", Status: 503, Msg: "down"}
	good := replicaStub("r1", search.Match{TextID: 1, Collisions: 5})

	cfg := testReplicaCfg()
	cfg.RetryBurst = 2
	cfg.RetryBudget = 1e-9 // effectively no earnings: only the burst retries
	rs := newReplicaSet(t, cfg, bad, good)
	ctx := context.Background()
	ok, failed := 0, 0
	for i := 0; i < 6; i++ {
		if _, _, err := rs.SearchContext(ctx, []uint32{1}, search.Options{Theta: 0.5}); err != nil {
			failed++
		} else {
			ok++
		}
	}
	// The first two queries spend the burst; later primaries landing on
	// r0 cannot retry and surface the error (the coordinator above would
	// flag them partial).
	if ok != 2 {
		t.Fatalf("%d queries retried successfully, want exactly the burst of 2", ok)
	}
	if failed != 4 {
		t.Fatalf("%d queries failed, want 4 budget-denied", failed)
	}
	if d := rs.ReplicaMetrics().BudgetDenied; d != 4 {
		t.Fatalf("budget_denied = %d, want 4", d)
	}
}

// TestReplicaSetThroughCoordinator checks the full path: a coordinator
// whose first range is a 2-replica set (one replica down) returns the
// complete, non-partial answer, attributes the retry in PerShard, and
// exposes the replica breakdown through ShardMetrics.
func TestReplicaSetThroughCoordinator(t *testing.T) {
	bad := replicaStub("r0")
	bad.err = &shard.RemoteError{Shard: "r0", Status: 503, Msg: "down"}
	good := replicaStub("r1", search.Match{TextID: 3, Start: 1, End: 9, Collisions: 6})
	clients := []shard.ShardClient{bad, good}
	rs, err := shard.NewReplicaSet("range0", clients, testReplicaCfg())
	if err != nil {
		t.Fatal(err)
	}
	plain := newStubShard("range1", 10, search.Match{TextID: 2, Start: 0, End: 8, Collisions: 5})

	c, err := shard.NewCoordinator([]shard.ShardClient{rs, plain}, shard.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	got, st, err := c.SearchContext(context.Background(), []uint32{1, 2, 3}, search.Options{Theta: 0.5, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if st.Partial() || st.ShardsAnswered != 2 {
		t.Fatalf("stats %d/%d partial=%v; a masked replica failure must not flag partial",
			st.ShardsAnswered, st.ShardsTotal, st.Partial())
	}
	// Bases: range0=0 (10 texts), range1=10; text 2 on range1 → 12.
	if len(got) != 2 || got[0].TextID != 3 || got[1].TextID != 12 {
		t.Fatalf("merged matches = %+v, want texts 3 and 12", got)
	}
	if n := len(st.PerShard[0].Attempts); n != 2 {
		t.Fatalf("PerShard[0].Attempts = %+v, want the primary + retry", st.PerShard[0].Attempts)
	}
	if len(st.PerShard[1].Attempts) != 0 {
		t.Fatalf("plain shard grew attempts: %+v", st.PerShard[1].Attempts)
	}
	retrySpans := 0
	for _, sp := range st.Spans {
		if sp.Name == "shard_retry" {
			retrySpans++
		}
	}
	if retrySpans != 1 {
		t.Fatalf("trace has %d shard_retry spans, want 1 (%+v)", retrySpans, st.Spans)
	}

	sm := c.ShardMetrics()
	if sm.Shards[0].ReplicaSet == nil {
		t.Fatal("ShardMetrics carries no replica breakdown for the replica set")
	}
	if sm.Shards[1].ReplicaSet != nil {
		t.Fatal("plain stub shard grew a replica breakdown")
	}
	reps := sm.Shards[0].ReplicaSet.Replicas
	if len(reps) != 2 || reps[0].Errors != 1 || reps[1].Retries != 1 {
		t.Fatalf("replica metrics = %+v, want r0 error + r1 retry", reps)
	}
	// Every attempt is accounted for: replica requests sum to the
	// attempt count the query reported.
	var attemptTotal int64
	for _, r := range reps {
		attemptTotal += r.Requests
	}
	if attemptTotal != int64(len(st.PerShard[0].Attempts)) {
		t.Fatalf("replica requests sum to %d, query recorded %d attempts",
			attemptTotal, len(st.PerShard[0].Attempts))
	}
}

func TestReplicaSetRejectsMismatchedCorpus(t *testing.T) {
	r0 := replicaStub("r0")
	r1 := newStubShard("r1", 11) // wrong NumTexts: not a copy of the shard
	r1.build = "build-1"
	_, err := shard.NewReplicaSet("group", []shard.ShardClient{r0, r1}, testReplicaCfg())
	if err == nil {
		t.Fatal("replicas with diverging NumTexts must be rejected at construction")
	}
}

func TestReplicaSetBuildTieBreaksToLowerIndex(t *testing.T) {
	// Two replicas with split builds and no majority: the tie breaks to
	// the lower index's build, quarantining r1 only.
	r0 := replicaStub("r0", search.Match{TextID: 1, Collisions: 5})
	r1 := replicaStub("r1")
	r1.build = "build-2"
	rs := newReplicaSet(t, testReplicaCfg(), r0, r1)
	if _, _, err := rs.SearchContext(context.Background(), []uint32{1}, search.Options{Theta: 0.5}); err != nil {
		t.Fatalf("tie-broken quarantine should leave r0 serving: %v", err)
	}
	if r1.calls.Load() != 0 {
		t.Fatal("quarantined replica took traffic")
	}
}
