package shard_test

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ndss/internal/index"
	"ndss/internal/search"
	"ndss/internal/shard"
)

// Fault and deadline tests over fully controllable stub shards: a shard
// that errors or misses its budget must yield a flagged partial result,
// never a failed query — unless the caller's own deadline expires or no
// shard answers at all.

// stubShard is a controllable ShardClient.
type stubShard struct {
	name    string
	build   string // BuildID override; replicas of one group must share it
	meta    index.Meta
	matches []search.Match
	stats   search.Stats
	err     error
	block   bool // park until the leg context is done, then return its error
	calls   atomic.Int64

	// hook, when set, fully overrides SearchContext (call is 1-based).
	hook func(ctx context.Context, call int64) ([]search.Match, *search.Stats, error)
}

func newStubShard(name string, numTexts int, matches ...search.Match) *stubShard {
	return &stubShard{
		name:    name,
		meta:    index.Meta{K: 8, Seed: 1, T: 5, NumTexts: numTexts, TotalTokens: int64(numTexts) * 50},
		matches: matches,
		stats:   search.Stats{K: 8, Beta: 4, Candidates: len(matches), IOBytes: 100},
	}
}

func (s *stubShard) Name() string     { return s.name }
func (s *stubShard) Meta() index.Meta { return s.meta }
func (s *stubShard) BuildID() string {
	if s.build != "" {
		return s.build
	}
	return "stub-" + s.name
}
func (s *stubShard) IOStats() index.IOStats                { return index.IOStats{} }
func (s *stubShard) Close() error                          { return nil }
func (s *stubShard) CheckHealth(ctx context.Context) error { return ctx.Err() }

func (s *stubShard) SearchContext(ctx context.Context, q []uint32, o search.Options) ([]search.Match, *search.Stats, error) {
	call := s.calls.Add(1)
	if s.hook != nil {
		return s.hook(ctx, call)
	}
	if s.block {
		<-ctx.Done()
		return nil, nil, ctx.Err()
	}
	if s.err != nil {
		return nil, nil, s.err
	}
	// The coordinator remaps text ids in place; hand out a fresh copy.
	ms := append([]search.Match(nil), s.matches...)
	st := s.stats
	return ms, &st, nil
}

func (s *stubShard) SearchTopKContext(ctx context.Context, q []uint32, o search.TopKOptions) ([]search.Match, *search.Stats, error) {
	return s.SearchContext(ctx, q, o.Search)
}

func (s *stubShard) ExplainContext(ctx context.Context, q []uint32, o search.Options) (*search.Plan, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return &search.Plan{Beta: 4}, nil
}

func stubCoordinator(t *testing.T, cfg shard.Config, shards ...*stubShard) *shard.Coordinator {
	t.Helper()
	clients := make([]shard.ShardClient, len(shards))
	for i, s := range shards {
		clients[i] = s
	}
	c, err := shard.NewCoordinator(clients, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestPartialOnShardError(t *testing.T) {
	s0 := newStubShard("s0", 10, search.Match{TextID: 3, Start: 1, End: 9, Collisions: 6})
	s1 := newStubShard("s1", 10)
	s1.err = errors.New("disk on fire")
	s2 := newStubShard("s2", 10, search.Match{TextID: 2, Start: 0, End: 8, Collisions: 5})

	c := stubCoordinator(t, shard.Config{}, s0, s1, s2)
	got, st, err := c.SearchContext(context.Background(), []uint32{1, 2, 3}, search.Options{Theta: 0.5})
	if err != nil {
		t.Fatalf("one failing shard must not fail the query: %v", err)
	}
	// Bases: s0=0, s1=10, s2=20; s2's local text 2 is global 22.
	if len(got) != 2 || got[0].TextID != 3 || got[1].TextID != 22 {
		t.Fatalf("merged matches = %+v, want texts 3 and 22", got)
	}
	if st.ShardsTotal != 3 || st.ShardsAnswered != 2 || !st.Partial() {
		t.Fatalf("stats %d/%d partial=%v, want 2/3 partial", st.ShardsAnswered, st.ShardsTotal, st.Partial())
	}
	ps := st.PerShard[1]
	if ps.Answered || !strings.Contains(ps.Err, "disk on fire") {
		t.Fatalf("failing shard attribution = %+v", ps)
	}
	if c.PartialResults() != 1 {
		t.Fatalf("PartialResults = %d, want 1", c.PartialResults())
	}
	m := c.ShardMetrics()
	if m.PartialResults != 1 {
		t.Fatalf("metrics partials = %d, want 1", m.PartialResults)
	}
	for i, sh := range m.Shards {
		wantErrs := int64(0)
		if i == 1 {
			wantErrs = 1
		}
		if sh.Requests != 1 || sh.Errors != wantErrs || sh.LatencyCount != 1 {
			t.Errorf("shard %s metrics: requests=%d errors=%d latency_count=%d", sh.Shard, sh.Requests, sh.Errors, sh.LatencyCount)
		}
	}
}

func TestPartialOnBudgetMiss(t *testing.T) {
	fast := newStubShard("fast", 10, search.Match{TextID: 0, Start: 0, End: 7, Collisions: 8})
	slow := newStubShard("slow", 10)
	slow.block = true

	c := stubCoordinator(t, shard.Config{ShardBudget: 20 * time.Millisecond}, fast, slow)
	got, st, err := c.SearchContext(context.Background(), []uint32{1, 2, 3}, search.Options{Theta: 0.5})
	if err != nil {
		t.Fatalf("budget miss must degrade to a partial, got error: %v", err)
	}
	if len(got) != 1 || got[0].TextID != 0 {
		t.Fatalf("matches = %+v, want the fast shard's text 0", got)
	}
	if !st.Partial() || st.ShardsAnswered != 1 {
		t.Fatalf("stats %d/%d, want flagged partial 1/2", st.ShardsAnswered, st.ShardsTotal)
	}
	if st.PerShard[1].Err != "deadline exceeded" {
		t.Fatalf("slow shard err = %q, want %q", st.PerShard[1].Err, "deadline exceeded")
	}
	if c.PartialResults() != 1 {
		t.Fatalf("PartialResults = %d, want 1", c.PartialResults())
	}
}

func TestParentDeadlineIsAnError(t *testing.T) {
	fast := newStubShard("fast", 10, search.Match{TextID: 0, Collisions: 8})
	slow := newStubShard("slow", 10)
	slow.block = true

	// No per-shard budget: the only deadline is the caller's own, and its
	// expiry fails the query exactly as on an unsharded backend.
	c := stubCoordinator(t, shard.Config{}, fast, slow)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, _, err := c.SearchContext(ctx, []uint32{1, 2, 3}, search.Options{Theta: 0.5})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("caller deadline expiry: err = %v, want DeadlineExceeded", err)
	}
}

func TestAllShardsFailingIsAnError(t *testing.T) {
	s0 := newStubShard("s0", 10)
	s0.err = errors.New("boom0")
	s1 := newStubShard("s1", 10)
	s1.err = errors.New("boom1")

	c := stubCoordinator(t, shard.Config{}, s0, s1)
	_, _, err := c.SearchContext(context.Background(), []uint32{1}, search.Options{Theta: 0.5})
	if err == nil || !strings.Contains(err.Error(), "shard s0") {
		t.Fatalf("all shards failing: err = %v, want the first shard's error", err)
	}
}

// TestTopKTieOrderAcrossShards pins the cross-shard tie order: equal
// collision counts rank by global text id then start, so the merged
// top-k is byte-identical to a single index's answer no matter which
// shard each tied span lives on.
func TestTopKTieOrderAcrossShards(t *testing.T) {
	s0 := newStubShard("s0", 10,
		search.Match{TextID: 5, Start: 3, End: 11, Collisions: 7},
		search.Match{TextID: 5, Start: 9, End: 17, Collisions: 7},
	)
	s1 := newStubShard("s1", 10,
		search.Match{TextID: 0, Start: 0, End: 8, Collisions: 9},  // global 10
		search.Match{TextID: 1, Start: 4, End: 12, Collisions: 7}, // global 11
	)

	c := stubCoordinator(t, shard.Config{}, s0, s1)
	got, _, err := c.SearchTopKContext(context.Background(), []uint32{1}, search.TopKOptions{N: 3, FloorTheta: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	want := []search.Match{
		{TextID: 10, Start: 0, End: 8, Collisions: 9},
		{TextID: 5, Start: 3, End: 11, Collisions: 7},
		{TextID: 5, Start: 9, End: 17, Collisions: 7},
	}
	if !sameMatches(got, want) {
		t.Fatalf("tie-broken top-3:\n got %+v\nwant %+v", got, want)
	}
	// Widening N picks up the remaining tied span, in text-id order.
	got, _, err = c.SearchTopKContext(context.Background(), []uint32{1}, search.TopKOptions{N: 10, FloorTheta: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 || got[3].TextID != 11 {
		t.Fatalf("top-10 = %+v, want the global-text-11 span last", got)
	}
}

// TestPartialTraceAndStatsAggregation checks the merged stats carry the
// summed counters of the answered shards and a shard-annotated span per
// leg when tracing is on.
func TestTraceAndStatsAggregation(t *testing.T) {
	s0 := newStubShard("s0", 10, search.Match{TextID: 1, Collisions: 5})
	s1 := newStubShard("s1", 10, search.Match{TextID: 2, Collisions: 4})

	c := stubCoordinator(t, shard.Config{}, s0, s1)
	_, st, err := c.SearchContext(context.Background(), []uint32{1}, search.Options{Theta: 0.5, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if st.IOBytes != 200 || st.Candidates != 2 {
		t.Fatalf("aggregated stats: io_bytes=%d candidates=%d, want 200/2", st.IOBytes, st.Candidates)
	}
	if st.K != 8 || st.Beta != 4 {
		t.Fatalf("stats K/Beta = %d/%d, want the shards' 8/4", st.K, st.Beta)
	}
	shardSpans, mergeSpans := 0, 0
	for _, sp := range st.Spans {
		switch sp.Name {
		case "shard":
			shardSpans++
		case "shard_merge":
			mergeSpans++
		}
	}
	if shardSpans != 2 || mergeSpans != 1 {
		t.Fatalf("trace has %d shard spans and %d merge spans, want 2 and 1 (%+v)", shardSpans, mergeSpans, st.Spans)
	}
	if st.Total <= 0 {
		t.Fatal("merged stats carry no total time")
	}
}
