package shard_test

import (
	"context"
	"errors"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"ndss/internal/core"
	"ndss/internal/corpus"
	"ndss/internal/index"
	"ndss/internal/search"
	"ndss/internal/server"
	"ndss/internal/shard"
)

// The cross-shard determinism suite: a corpus split into four doc-range
// shards — two in-process, two remote over real HTTP servers — must
// answer every query byte-identically to one merged index over the same
// texts, including top-k tie order, with full per-shard attribution in
// Stats.

var buildOpts = index.BuildOptions{K: 8, Seed: 21, T: 5, ZoneMapStep: 4, LongListCutoff: 8}

// fixtureTexts synthesizes a corpus with planted near-duplicates spread
// across what will become all four shards.
func fixtureTexts(t *testing.T) [][]uint32 {
	t.Helper()
	c := corpus.MustSynthesize(corpus.SynthConfig{
		NumTexts: 48, MinLength: 40, MaxLength: 120, VocabSize: 40,
		ZipfS: 1.3, Seed: 7, DupRate: 0.6, DupSnippetLen: 20, DupMutateProb: 0.05,
	})
	texts := make([][]uint32, c.NumTexts())
	for i := range texts {
		texts[i] = c.Text(uint32(i))
	}
	return texts
}

// buildEngine builds an index over texts in a fresh directory and opens
// it with the texts attached (so Verify works).
func buildEngine(t *testing.T, texts [][]uint32) *core.Engine {
	t.Helper()
	c := corpus.New(texts)
	dir := t.TempDir()
	if _, err := index.Build(c, dir, buildOpts); err != nil {
		t.Fatal(err)
	}
	e, err := core.Open(dir, c)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

type shardFixture struct {
	texts  [][]uint32
	single *core.Engine
	coord  *shard.Coordinator
}

// newShardFixture splits the corpus into four consecutive doc-range
// chunks served as two Local shards plus two HTTPShards over real
// ndss-serve instances, and builds the single merged reference index.
func newShardFixture(t *testing.T, cfg shard.Config) *shardFixture {
	t.Helper()
	texts := fixtureTexts(t)
	single := buildEngine(t, texts)
	t.Cleanup(func() { single.Close() })

	const numShards = 4
	per := len(texts) / numShards
	clients := make([]shard.ShardClient, 0, numShards)
	for i := 0; i < numShards; i++ {
		chunk := texts[i*per : (i+1)*per]
		e := buildEngine(t, chunk)
		if i < 2 {
			clients = append(clients, shard.NewLocal(t.TempDir(), e))
			continue
		}
		// Remote shards: a real server.Server over the shard's engine,
		// spoken to through the HTTP transport.
		ts := httptest.NewServer(server.New(e, server.Config{}))
		t.Cleanup(ts.Close)
		t.Cleanup(func() { e.Close() })
		hs, err := shard.NewHTTPShard(context.Background(), ts.URL, shard.HTTPOptions{Client: ts.Client()})
		if err != nil {
			t.Fatal(err)
		}
		clients = append(clients, hs)
	}
	coord, err := shard.NewCoordinator(clients, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord.Close() })
	return &shardFixture{texts: texts, single: single, coord: coord}
}

// queries returns probe queries planted in each shard's doc range plus
// one longer span.
func (f *shardFixture) queries() [][]uint32 {
	return [][]uint32{
		f.texts[0][:12],
		f.texts[13][:12],
		f.texts[30][:12],
		f.texts[45][:12],
		f.texts[5][:30],
	}
}

// sameMatches compares result slices treating nil and empty as equal
// (the coordinator always returns a non-nil slice).
func sameMatches(got, want []search.Match) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if !reflect.DeepEqual(got[i], want[i]) {
			return false
		}
	}
	return true
}

func TestCoordinatorSearchMatchesSingleIndex(t *testing.T) {
	f := newShardFixture(t, shard.Config{})
	optsList := []search.Options{
		{Theta: 0.5},
		{Theta: 0.5, PrefixFilter: true},
		{Theta: 0.5, CostBasedPrefix: true},
		{Theta: 0.8, Verify: true},
	}
	ctx := context.Background()
	totalMatches := 0
	shardsHit := map[int]bool{}
	for qi, q := range f.queries() {
		for oi, opts := range optsList {
			want, _, err := f.single.SearchContext(ctx, q, opts)
			if err != nil {
				t.Fatalf("query %d opts %d: single: %v", qi, oi, err)
			}
			got, st, err := f.coord.SearchContext(ctx, q, opts)
			if err != nil {
				t.Fatalf("query %d opts %d: coordinator: %v", qi, oi, err)
			}
			if !sameMatches(got, want) {
				t.Errorf("query %d opts %d: sharded result diverges:\n got %+v\nwant %+v", qi, oi, got, want)
			}
			if st.ShardsTotal != 4 || st.ShardsAnswered != 4 || st.Partial() {
				t.Errorf("query %d opts %d: stats %d/%d answered, partial=%v; want 4/4 full",
					qi, oi, st.ShardsAnswered, st.ShardsTotal, st.Partial())
			}
			if len(st.PerShard) != 4 {
				t.Fatalf("query %d opts %d: PerShard has %d entries", qi, oi, len(st.PerShard))
			}
			perShardMatches := 0
			for _, ps := range st.PerShard {
				if !ps.Answered || ps.Err != "" {
					t.Errorf("query %d opts %d: shard %s flagged: %+v", qi, oi, ps.Shard, ps)
				}
				perShardMatches += ps.Matches
			}
			if perShardMatches != len(got) {
				t.Errorf("query %d opts %d: per-shard match counts sum to %d, result has %d",
					qi, oi, perShardMatches, len(got))
			}
			totalMatches += len(got)
			for _, m := range got {
				shardsHit[int(m.TextID)/12] = true
			}
		}
	}
	// Guard against a vacuous pass: the planted duplicates must produce
	// matches landing in several shards' doc ranges.
	if totalMatches == 0 {
		t.Fatal("no query produced matches; fixture is vacuous")
	}
	if len(shardsHit) < 2 {
		t.Fatalf("matches only landed in shards %v; need cross-shard coverage", shardsHit)
	}
}

func TestCoordinatorTopKMatchesSingleIndex(t *testing.T) {
	f := newShardFixture(t, shard.Config{})
	ctx := context.Background()
	sawTie := false
	for qi, q := range f.queries() {
		for _, n := range []int{1, 3, 8, 100} {
			opts := search.TopKOptions{N: n, FloorTheta: 0.5}
			want, _, err := f.single.SearchTopKContext(ctx, q, opts)
			if err != nil {
				t.Fatalf("query %d n=%d: single: %v", qi, n, err)
			}
			got, st, err := f.coord.SearchTopKContext(ctx, q, opts)
			if err != nil {
				t.Fatalf("query %d n=%d: coordinator: %v", qi, n, err)
			}
			if !sameMatches(got, want) {
				t.Errorf("query %d n=%d: sharded top-k diverges:\n got %+v\nwant %+v", qi, n, got, want)
			}
			if st.ShardsAnswered != 4 {
				t.Errorf("query %d n=%d: %d/4 shards answered", qi, n, st.ShardsAnswered)
			}
			for i := 1; i < len(want); i++ {
				if want[i].Collisions == want[i-1].Collisions {
					sawTie = true
				}
			}
		}
	}
	if !sawTie {
		t.Log("warning: no collision ties observed; tie order exercised only by fault_test stubs")
	}
}

func TestCoordinatorExplain(t *testing.T) {
	f := newShardFixture(t, shard.Config{})
	q := f.queries()[0]
	opts := search.Options{Theta: 0.5, PrefixFilter: true}
	want, err := f.single.Explain(context.Background(), q, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.coord.Explain(context.Background(), q, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Plans come from one shard, whose list lengths differ from the
	// merged index; only the sketch-derived parameters must agree.
	if got.Beta != want.Beta || got.Alpha != want.Alpha {
		t.Fatalf("plan beta/alpha = %d/%d, single index has %d/%d", got.Beta, got.Alpha, want.Beta, want.Alpha)
	}
}

func TestCoordinatorAggregates(t *testing.T) {
	f := newShardFixture(t, shard.Config{})
	m := f.coord.Meta()
	sm := f.single.Meta()
	if m.NumTexts != sm.NumTexts || m.TotalTokens != sm.TotalTokens {
		t.Errorf("aggregate meta %d texts/%d tokens, merged index has %d/%d",
			m.NumTexts, m.TotalTokens, sm.NumTexts, sm.TotalTokens)
	}
	if m.K != sm.K || m.Seed != sm.Seed || m.T != sm.T {
		t.Errorf("aggregate meta K/Seed/T = %d/%d/%d, want %d/%d/%d", m.K, m.Seed, m.T, sm.K, sm.Seed, sm.T)
	}
	if id := f.coord.BuildID(); !strings.HasPrefix(id, "sharded-4-") {
		t.Errorf("BuildID = %q, want sharded-4-* for a 4-shard set", id)
	}
	if names := f.coord.Shards(); len(names) != 4 {
		t.Errorf("Shards() = %v, want 4 entries", names)
	}
	if err := f.coord.CheckHealth(context.Background()); err != nil {
		t.Errorf("CheckHealth on healthy shards: %v", err)
	}
	met := f.coord.ShardMetrics()
	if len(met.Shards) != 4 {
		t.Fatalf("ShardMetrics has %d shards", len(met.Shards))
	}
	for _, s := range met.Shards {
		if s.BuildID == "" {
			t.Errorf("shard %s reports no build id", s.Shard)
		}
	}
}

func TestMixedShardsRejected(t *testing.T) {
	texts := fixtureTexts(t)
	a := buildEngine(t, texts[:12])
	t.Cleanup(func() { a.Close() })
	// A shard built with a different seed sketches incompatibly.
	c := corpus.New(texts[12:24])
	dir := t.TempDir()
	other := buildOpts
	other.Seed = buildOpts.Seed + 1
	if _, err := index.Build(c, dir, other); err != nil {
		t.Fatal(err)
	}
	b, err := core.Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })

	_, err = shard.NewCoordinator([]shard.ShardClient{
		shard.NewLocal("a", a), shard.NewLocal("b", b),
	}, shard.Config{})
	var mixed *shard.MixedShardsError
	if !errors.As(err, &mixed) {
		t.Fatalf("mixed shard set: err = %v, want *MixedShardsError", err)
	}
	if mixed.Shard != "b" {
		t.Errorf("MixedShardsError names %q, want the disagreeing shard b", mixed.Shard)
	}
}

func TestHTTPShardHealth(t *testing.T) {
	texts := fixtureTexts(t)
	e := buildEngine(t, texts[:12])
	t.Cleanup(func() { e.Close() })
	srv := server.New(e, server.Config{})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	hs, err := shard.NewHTTPShard(context.Background(), ts.URL, shard.HTTPOptions{Client: ts.Client()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { hs.Close() })
	if hs.Meta().K != buildOpts.K || hs.Meta().NumTexts != 12 {
		t.Fatalf("HTTPShard learned meta %+v from /healthz", hs.Meta())
	}
	if hs.BuildID() == "" {
		t.Fatal("HTTPShard learned no build id")
	}

	// A draining remote (healthz 503) is unhealthy and the failure is
	// transient: the coordinator may keep it in rotation.
	srv.BeginShutdown()
	err = hs.CheckHealth(context.Background())
	var re *shard.RemoteError
	if !errors.As(err, &re) || re.Status != 503 {
		t.Fatalf("health of draining shard: %v, want RemoteError 503", err)
	}
	if !re.Transient() {
		t.Error("503 from a draining shard should be transient")
	}
}

func TestCoordinatorOptionValidation(t *testing.T) {
	f := newShardFixture(t, shard.Config{})
	q := f.queries()[0]
	ctx := context.Background()
	if _, _, err := f.coord.SearchContext(ctx, q, search.Options{Theta: 0.5, KeepRects: true}); err == nil {
		t.Error("KeepRects through a coordinator should be rejected")
	}
	if _, _, err := f.coord.SearchTopKContext(ctx, q, search.TopKOptions{N: 0, FloorTheta: 0.5}); err == nil {
		t.Error("top-k with N=0 should be rejected")
	}
	// Shard-side validation errors surface, not hang: theta out of range.
	if _, _, err := f.coord.SearchContext(ctx, q, search.Options{Theta: 1.5}); err == nil {
		t.Error("invalid theta should surface from the shards")
	}
}
