package obs

import (
	"encoding/json"
	"time"
)

// spanJSON is Span's wire shape: attributes appear as a plain list only
// when present, keeping serialized traces compact.
type spanJSON struct {
	Name    string `json:"name"`
	StartNS int64  `json:"start_ns"`
	DurNS   int64  `json:"dur_ns"`
	Attrs   []Attr `json:"attrs,omitempty"`
}

// MarshalJSON serializes the span with its inline attributes.
func (s Span) MarshalJSON() ([]byte, error) {
	js := spanJSON{Name: s.Name, StartNS: int64(s.Start), DurNS: int64(s.Dur)}
	if s.nattrs > 0 {
		js.Attrs = s.attrs[:s.nattrs]
	}
	return json.Marshal(js)
}

// UnmarshalJSON restores a span serialized by MarshalJSON. Attributes
// beyond the inline capacity are dropped.
func (s *Span) UnmarshalJSON(data []byte) error {
	var js spanJSON
	if err := json.Unmarshal(data, &js); err != nil {
		return err
	}
	*s = Span{Name: js.Name, Start: time.Duration(js.StartNS), Dur: time.Duration(js.DurNS)}
	for _, a := range js.Attrs {
		if s.nattrs == maxAttrs {
			break
		}
		s.attrs[s.nattrs] = a
		s.nattrs++
	}
	return nil
}
