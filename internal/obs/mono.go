package obs

import "time"

// Mono is a reading of the process-local monotonic clock. Durations
// between two Mono readings are immune to wall-clock steps (NTP slews,
// manual clock changes), which matters for the latency accounting in
// the query pipeline: a negative or wildly large stage duration would
// poison the Fig. 6 stage-attribution tables.
//
// The rest of the module is expected to time hot paths with
// NowMono/SinceMono/Mono.Sub instead of subtracting time.Time values;
// the monotime analyzer in internal/analysis enforces this.
type Mono time.Duration

// monoBase anchors Mono readings. time.Now carries a monotonic
// component, so differences against monoBase are monotonic durations.
var monoBase = time.Now()

// NowMono returns the current monotonic clock reading.
func NowMono() Mono {
	return Mono(time.Since(monoBase))
}

// SinceMono returns the elapsed time since an earlier NowMono reading.
func SinceMono(start Mono) time.Duration {
	return time.Duration(NowMono() - start)
}

// Sub returns the duration m-earlier as a time.Duration.
func (m Mono) Sub(earlier Mono) time.Duration {
	return time.Duration(m - earlier)
}

// Duration converts a Mono reading (itself a duration since the
// process-local base) to a plain time.Duration.
func (m Mono) Duration() time.Duration {
	return time.Duration(m)
}
