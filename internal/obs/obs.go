// Package obs is a zero-dependency, allocation-light span recorder for
// per-query tracing. A Trace owns a flat list of named spans with
// monotonic start offsets and durations; the query pipeline records one
// span per stage (and, in detailed mode, one per deferred-list probe),
// so every query can report exactly where its time went.
//
// Design constraints, in order:
//
//   - Cheap enough for the default query path: starting and ending a
//     span is two time.Now calls and one in-place append into a slice
//     the owner reuses across queries (no steady-state allocation).
//   - No locks: a Trace belongs to exactly one query at a time, the
//     same ownership discipline the pipeline's queryCtx already has.
//   - Bounded: at most MaxSpans spans are retained per trace; beyond
//     that Start drops the span (and counts the drop) rather than
//     growing without limit on pathological queries.
//
// The package depends only on "time" and is usable from any layer
// (search pipeline, server, CLIs) without import cycles.
package obs

import "time"

// MaxSpans bounds the spans retained per trace. Stage spans are few;
// the cap only matters for per-probe spans on adversarial queries.
const MaxSpans = 512

// Attr is one integer-valued span attribute (list lengths, byte counts,
// text ids). Values are int64 so byte counts and durations both fit;
// string values are deliberately unsupported to keep spans flat and
// allocation-free.
type Attr struct {
	Key string `json:"key"`
	Val int64  `json:"val"`
}

// maxAttrs is the inline attribute capacity per span. Two is enough for
// every current producer (probe spans carry fn + text id); inline
// storage keeps Span a flat value with no per-span allocation.
const maxAttrs = 2

// Span is one named, timed region of a trace. Start is the offset from
// the trace's base in monotonic time; Dur is -1 while the span is open.
type Span struct {
	Name  string        `json:"name"`
	Start time.Duration `json:"start_ns"`
	Dur   time.Duration `json:"dur_ns"`

	nattrs int
	attrs  [maxAttrs]Attr
}

// Attrs returns the span's attributes (a view into inline storage).
func (s *Span) Attrs() []Attr { return s.attrs[:s.nattrs] }

// Attr returns the value of the named attribute and whether it is set.
func (s *Span) Attr(key string) (int64, bool) {
	for i := 0; i < s.nattrs; i++ {
		if s.attrs[i].Key == key {
			return s.attrs[i].Val, true
		}
	}
	return 0, false
}

// SpanID identifies an open span within its trace. The zero value is
// not valid; Start returns None when the trace is full.
type SpanID int32

// None is the SpanID returned once a trace is full. End and Annotate
// accept it and do nothing, so callers never need to branch.
const None SpanID = -1

// Trace records spans against one monotonic base time. The zero value
// is unusable; call Reset before the first Start. A Trace must not be
// shared between goroutines without external synchronization.
type Trace struct {
	base    time.Time
	spans   []Span
	dropped int
}

// Reset rebases the trace at now and discards recorded spans, retaining
// span capacity so a pooled trace records without allocating.
func (t *Trace) Reset() {
	t.base = time.Now()
	t.spans = t.spans[:0]
	t.dropped = 0
}

// Start opens a named span and returns its id, or None when the trace
// is at MaxSpans (the drop is counted).
func (t *Trace) Start(name string) SpanID {
	if len(t.spans) >= MaxSpans {
		t.dropped++
		return None
	}
	t.spans = append(t.spans, Span{Name: name, Start: time.Since(t.base), Dur: -1})
	return SpanID(len(t.spans) - 1)
}

// Record appends an already-timed span: start is its offset from the
// trace's base and dur its duration. Callers that time work outside the
// trace's own clock — concurrent fan-out legs whose goroutines must not
// touch the trace — measure with NowMono/SinceMono and record after
// joining. Returns the span's id (for Annotate), or None when the trace
// is at MaxSpans (the drop is counted).
func (t *Trace) Record(name string, start, dur time.Duration) SpanID {
	if len(t.spans) >= MaxSpans {
		t.dropped++
		return None
	}
	t.spans = append(t.spans, Span{Name: name, Start: start, Dur: dur})
	return SpanID(len(t.spans) - 1)
}

// End closes the span and returns its duration (0 for None).
func (t *Trace) End(id SpanID) time.Duration {
	if id == None {
		return 0
	}
	sp := &t.spans[id]
	sp.Dur = time.Since(t.base) - sp.Start
	return sp.Dur
}

// Annotate attaches an integer attribute to an open or closed span.
// Attributes beyond the inline capacity are silently dropped.
func (t *Trace) Annotate(id SpanID, key string, val int64) {
	if id == None {
		return
	}
	sp := &t.spans[id]
	if sp.nattrs < maxAttrs {
		sp.attrs[sp.nattrs] = Attr{Key: key, Val: val}
		sp.nattrs++
	}
}

// Len reports the number of recorded spans.
func (t *Trace) Len() int { return len(t.spans) }

// Dropped reports how many Start calls were refused by the MaxSpans cap
// since the last Reset.
func (t *Trace) Dropped() int { return t.dropped }

// Spans returns the recorded spans as a live view, valid until the next
// Reset. Callers that retain spans past the query must use Snapshot.
func (t *Trace) Spans() []Span { return t.spans }

// Snapshot copies the recorded spans, appending into dst (which may be
// nil). Open spans appear with Dur -1.
func (t *Trace) Snapshot(dst []Span) []Span {
	return append(dst[:0], t.spans...)
}

// Dur sums the durations of all closed spans with the given name.
func (t *Trace) Dur(name string) time.Duration {
	var total time.Duration
	for i := range t.spans {
		if t.spans[i].Name == name && t.spans[i].Dur >= 0 {
			total += t.spans[i].Dur
		}
	}
	return total
}
