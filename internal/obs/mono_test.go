package obs

import (
	"testing"
	"time"
)

func TestMonoHelpers(t *testing.T) {
	a := NowMono()
	time.Sleep(time.Millisecond)
	b := NowMono()
	if b <= a {
		t.Fatalf("monotonic clock went backwards: %d then %d", a, b)
	}
	if d := b.Sub(a); d <= 0 || d > time.Minute {
		t.Fatalf("Sub(%d, %d) = %v", b, a, d)
	}
	if d := SinceMono(a); d < b.Sub(a) {
		t.Fatalf("SinceMono(%d) = %v, earlier reading measured %v", a, d, b.Sub(a))
	}
	if got := Mono(25 * time.Millisecond).Duration(); got != 25*time.Millisecond {
		t.Fatalf("Duration() = %v", got)
	}
}
