package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// Serialized spans can come from older tools or other processes; the
// decoder must clamp attributes to the inline capacity instead of
// growing the span.
func TestSpanJSONAttrTruncation(t *testing.T) {
	in := `{"name":"probe","start_ns":10,"dur_ns":20,"attrs":[` +
		`{"key":"a","val":1},{"key":"b","val":2},{"key":"c","val":3},{"key":"d","val":4}]}`
	var s Span
	if err := json.Unmarshal([]byte(in), &s); err != nil {
		t.Fatal(err)
	}
	attrs := s.Attrs()
	if len(attrs) != maxAttrs {
		t.Fatalf("kept %d attrs, inline capacity is %d", len(attrs), maxAttrs)
	}
	// The first attributes win: producers annotate most-important-first.
	if attrs[0] != (Attr{Key: "a", Val: 1}) || attrs[1] != (Attr{Key: "b", Val: 2}) {
		t.Fatalf("truncation reordered attrs: %+v", attrs)
	}
	if _, ok := s.Attr("c"); ok {
		t.Fatal("attr beyond capacity survived decode")
	}
	if s.Start != 10*time.Nanosecond || s.Dur != 20*time.Nanosecond {
		t.Fatalf("timing fields lost: %+v", s)
	}
}

// Exactly at capacity everything survives a full round trip.
func TestSpanJSONRoundTripAtCapacity(t *testing.T) {
	var tr Trace
	tr.Reset()
	id := tr.Start("gather")
	tr.Annotate(id, "fn", 3)
	tr.Annotate(id, "len", 99)
	tr.Annotate(id, "extra", 7) // beyond capacity: dropped at annotate time
	tr.End(id)

	data, err := json.Marshal(tr.Spans()[0])
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "extra") {
		t.Fatalf("over-capacity attr leaked into JSON: %s", data)
	}
	var back Span
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if v, ok := back.Attr("fn"); !ok || v != 3 {
		t.Fatalf("fn attr lost: %d %v", v, ok)
	}
	if v, ok := back.Attr("len"); !ok || v != 99 {
		t.Fatalf("len attr lost: %d %v", v, ok)
	}
}

// A trace pushed past MaxSpans drops the excess and counts the drops;
// what remains still serializes and decodes span for span.
func TestTraceOverflowSerializesWithDropCount(t *testing.T) {
	var tr Trace
	tr.Reset()
	const extra = 37
	for i := 0; i < MaxSpans+extra; i++ {
		tr.End(tr.Start("s"))
	}
	if tr.Len() != MaxSpans {
		t.Fatalf("trace holds %d spans, cap is %d", tr.Len(), MaxSpans)
	}
	if tr.Dropped() != extra {
		t.Fatalf("Dropped() = %d, want %d", tr.Dropped(), extra)
	}
	data, err := json.Marshal(tr.Snapshot(nil))
	if err != nil {
		t.Fatal(err)
	}
	var back []Span
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != MaxSpans {
		t.Fatalf("round trip changed span count: %d", len(back))
	}
	// Reset clears the drop counter with the spans.
	tr.Reset()
	if tr.Dropped() != 0 || tr.Len() != 0 {
		t.Fatalf("Reset left dropped=%d len=%d", tr.Dropped(), tr.Len())
	}
}

// Malformed input errors out instead of half-filling the span.
func TestSpanJSONMalformed(t *testing.T) {
	for _, in := range []string{
		`{"name":"x","start_ns":"notanumber"}`,
		`{"name":"x","attrs":{"key":"a"}}`, // attrs must be a list
		`[1,2,3]`,
		`{`,
	} {
		var s Span
		if err := json.Unmarshal([]byte(in), &s); err == nil {
			t.Errorf("decoded malformed span %s as %+v", in, s)
		}
	}
}
