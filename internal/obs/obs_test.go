package obs

import (
	"encoding/json"
	"testing"
	"time"
)

func TestTraceBasic(t *testing.T) {
	var tr Trace
	tr.Reset()
	id := tr.Start("sketch")
	time.Sleep(time.Millisecond)
	d := tr.End(id)
	if d <= 0 {
		t.Fatalf("End returned %v, want > 0", d)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tr.Len())
	}
	sp := tr.Spans()[0]
	if sp.Name != "sketch" || sp.Dur != d || sp.Start < 0 {
		t.Fatalf("span %+v, want name=sketch dur=%v", sp, d)
	}
	if got := tr.Dur("sketch"); got != d {
		t.Fatalf("Dur(sketch) = %v, want %v", got, d)
	}
	if got := tr.Dur("absent"); got != 0 {
		t.Fatalf("Dur(absent) = %v, want 0", got)
	}
}

func TestTraceAnnotate(t *testing.T) {
	var tr Trace
	tr.Reset()
	id := tr.Start("probe")
	tr.Annotate(id, "fn", 3)
	tr.Annotate(id, "text", 42)
	tr.Annotate(id, "overflow", 1) // beyond inline capacity: dropped
	tr.End(id)
	sp := tr.Spans()[0]
	if len(sp.Attrs()) != 2 {
		t.Fatalf("attrs %v, want 2", sp.Attrs())
	}
	if v, ok := sp.Attr("text"); !ok || v != 42 {
		t.Fatalf("Attr(text) = %d, %v", v, ok)
	}
	if _, ok := sp.Attr("overflow"); ok {
		t.Fatal("overflow attribute retained past capacity")
	}
}

func TestTraceCap(t *testing.T) {
	var tr Trace
	tr.Reset()
	for i := 0; i < MaxSpans+10; i++ {
		id := tr.Start("s")
		tr.End(id)
	}
	if tr.Len() != MaxSpans {
		t.Fatalf("Len = %d, want %d", tr.Len(), MaxSpans)
	}
	if tr.Dropped() != 10 {
		t.Fatalf("Dropped = %d, want 10", tr.Dropped())
	}
	// None flows through End/Annotate without effect.
	if d := tr.End(None); d != 0 {
		t.Fatalf("End(None) = %v", d)
	}
	tr.Annotate(None, "k", 1)

	tr.Reset()
	if tr.Len() != 0 || tr.Dropped() != 0 {
		t.Fatalf("after Reset: len=%d dropped=%d", tr.Len(), tr.Dropped())
	}
}

func TestTraceReuseNoAlloc(t *testing.T) {
	var tr Trace
	// Warm the span slice to capacity once.
	tr.Reset()
	for i := 0; i < 16; i++ {
		tr.End(tr.Start("s"))
	}
	allocs := testing.AllocsPerRun(100, func() {
		tr.Reset()
		for i := 0; i < 16; i++ {
			id := tr.Start("s")
			tr.Annotate(id, "k", 1)
			tr.End(id)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state trace allocates %.1f per run, want 0", allocs)
	}
}

func TestTraceSnapshot(t *testing.T) {
	var tr Trace
	tr.Reset()
	tr.End(tr.Start("a"))
	open := tr.Start("b") // left open
	snap := tr.Snapshot(nil)
	if len(snap) != 2 {
		t.Fatalf("snapshot %d spans, want 2", len(snap))
	}
	if snap[1].Dur != -1 {
		t.Fatalf("open span Dur = %v, want -1", snap[1].Dur)
	}
	tr.End(open)
	// Snapshot is a copy: resetting the trace must not change it.
	tr.Reset()
	if snap[0].Name != "a" {
		t.Fatalf("snapshot mutated: %+v", snap[0])
	}
}

func TestSpanJSONRoundTrip(t *testing.T) {
	var tr Trace
	tr.Reset()
	id := tr.Start("probe")
	tr.Annotate(id, "fn", 7)
	tr.End(id)
	tr.End(tr.Start("merge"))

	data, err := json.Marshal(tr.Spans())
	if err != nil {
		t.Fatal(err)
	}
	var back []Span
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[0].Name != "probe" || back[1].Name != "merge" {
		t.Fatalf("round trip %+v", back)
	}
	if v, ok := back[0].Attr("fn"); !ok || v != 7 {
		t.Fatalf("attr lost in round trip: %d, %v", v, ok)
	}
	if back[0].Dur != tr.Spans()[0].Dur {
		t.Fatalf("dur %v != %v", back[0].Dur, tr.Spans()[0].Dur)
	}
	// Attribute-less spans serialize without an attrs key.
	one, err := json.Marshal(back[1])
	if err != nil {
		t.Fatal(err)
	}
	if string(one) != `{"name":"merge","start_ns":`+itoa(int64(back[1].Start))+`,"dur_ns":`+itoa(int64(back[1].Dur))+`}` {
		t.Fatalf("span JSON %s", one)
	}
}

func itoa(v int64) string {
	b, _ := json.Marshal(v)
	return string(b)
}

func BenchmarkTraceStageSpans(b *testing.B) {
	var tr Trace
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Reset()
		for _, name := range [...]string{"sketch", "plan", "gather", "count", "merge", "verify"} {
			tr.End(tr.Start(name))
		}
	}
}
