package obs

import (
	"encoding/json"
	"testing"
	"time"
)

func TestFlightAssembly(t *testing.T) {
	var f Flight
	root := f.Add("", "r0", "search", 0, 100*time.Millisecond)
	if root != "r0" {
		t.Fatalf("Add kept spanID: got %q", root)
	}
	leg := f.Add(root, "", "shard", 2*time.Millisecond, 90*time.Millisecond, Attr{Key: "shard", Val: 1})
	if leg == "" {
		t.Fatal("Add did not mint a span id")
	}

	// A remote trace snapshot: flat, id-free, on its own clock.
	var tr Trace
	tr.Reset()
	tr.Record("sketch", 0, time.Millisecond)
	id := tr.Record("gather", 2*time.Millisecond, 3*time.Millisecond)
	tr.Annotate(id, "io_bytes", 4096)
	remote := tr.Snapshot(nil)

	f.Graft(leg, remote, 10*time.Millisecond)

	spans := f.Spans()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(spans))
	}
	byName := map[string]FlightSpan{}
	ids := map[string]bool{}
	for _, sp := range spans {
		byName[sp.Name] = sp
		if sp.SpanID == "" || ids[sp.SpanID] {
			t.Fatalf("span %q has empty or duplicate id %q", sp.Name, sp.SpanID)
		}
		ids[sp.SpanID] = true
	}
	// Every non-root parent must exist in the tree.
	for _, sp := range spans {
		if sp.ParentID == "" {
			if sp.Name != "search" {
				t.Fatalf("unexpected root %q", sp.Name)
			}
			continue
		}
		if !ids[sp.ParentID] {
			t.Fatalf("span %q has dangling parent %q", sp.Name, sp.ParentID)
		}
	}
	// Grafted spans hang off the leg, shifted onto the flight axis,
	// with durations and attrs intact.
	sk := byName["sketch"]
	if sk.ParentID != leg || sk.StartNS != int64(10*time.Millisecond) || sk.DurNS != int64(time.Millisecond) {
		t.Fatalf("sketch grafted wrong: %+v", sk)
	}
	ga := byName["gather"]
	if ga.ParentID != leg || ga.StartNS != int64(12*time.Millisecond) {
		t.Fatalf("gather grafted wrong: %+v", ga)
	}
	if len(ga.Attrs) != 1 || ga.Attrs[0].Key != "io_bytes" || ga.Attrs[0].Val != 4096 {
		t.Fatalf("gather lost its io_bytes attr: %+v", ga.Attrs)
	}
}

func TestFlightSpanJSON(t *testing.T) {
	var f Flight
	root := f.Add("", "aa11", "q", time.Millisecond, 2*time.Millisecond)
	f.Add(root, "bb22", "leg", time.Millisecond, time.Millisecond, Attr{Key: "shard", Val: 0})
	raw, err := json.Marshal(f.Spans())
	if err != nil {
		t.Fatal(err)
	}
	var back []FlightSpan
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 {
		t.Fatalf("round trip diverged: %s", raw)
	}
	if got, want := back[0], f.Spans()[0]; got.SpanID != want.SpanID || got.ParentID != want.ParentID ||
		got.Name != want.Name || got.StartNS != want.StartNS || got.DurNS != want.DurNS {
		t.Fatalf("root diverged: got %+v want %+v", got, want)
	}
	if back[1].ParentID != "aa11" || len(back[1].Attrs) != 1 || back[1].Attrs[0].Key != "shard" {
		t.Fatalf("child lost fields: %+v", back[1])
	}
}
