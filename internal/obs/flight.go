package obs

import (
	"encoding/hex"
	"time"
)

// Flight assembly: one query's spans from every process it touched,
// stitched into a single tree. The in-process Trace recorder stays
// flat and id-free (recording must cost nanoseconds); ids and parent
// links are attached here, after the query has completed, when the
// serving edge grafts each leg's remote spans under the attempt that
// carried them.

// FlightSpan is one node of an assembled cross-process trace tree.
// Start is relative to the flight's root span (the query's arrival at
// the serving edge); remote spans are shifted by their carrying
// attempt's start when grafted, so timings from different processes
// share one axis.
type FlightSpan struct {
	SpanID   string `json:"span_id"`
	ParentID string `json:"parent_span_id,omitempty"`
	Name     string `json:"name"`
	StartNS  int64  `json:"start_ns"`
	DurNS    int64  `json:"dur_ns"`
	Attrs    []Attr `json:"attrs,omitempty"`
}

// Flight accumulates the assembled tree. Not safe for concurrent use;
// assembly happens once, after the query, on one goroutine — the
// single-owner alternative to the `// guarded by <mu>` discipline
// (docs/INVARIANTS.md#guardedby): no field here may ever be touched
// from a spawned goroutine, so there is deliberately no mutex to name.
type Flight struct {
	spans []FlightSpan
}

// Add appends one span. An empty spanID mints a fresh one; an empty
// parentID marks a root. The span id actually used is returned so
// children can link to it.
func (f *Flight) Add(parentID, spanID, name string, start, dur time.Duration, attrs ...Attr) string {
	if spanID == "" {
		spanID = mintSpanID()
	}
	var as []Attr
	if len(attrs) > 0 {
		as = append(as, attrs...)
	}
	f.spans = append(f.spans, FlightSpan{
		SpanID:   spanID,
		ParentID: parentID,
		Name:     name,
		StartNS:  int64(start),
		DurNS:    int64(dur),
		Attrs:    as,
	})
	return spanID
}

// Graft attaches a flat span list recorded by another clock domain —
// a remote shard's Trace snapshot, or the local engine's — as children
// of parentID, shifting every start by offset onto the flight's time
// axis. Names, durations, and attrs (io_bytes included) survive
// verbatim.
func (f *Flight) Graft(parentID string, spans []Span, offset time.Duration) {
	for i := range spans {
		sp := &spans[i]
		f.Add(parentID, "", sp.Name, sp.Start+offset, sp.Dur, sp.Attrs()...)
	}
}

// Spans returns the assembled tree in insertion order (parents before
// children).
func (f *Flight) Spans() []FlightSpan {
	return f.spans
}

// mintSpanID generates a span id for spans that never crossed a
// process boundary and therefore never needed one until assembly.
func mintSpanID() string {
	var b [8]byte
	for isZero(b[:]) {
		fillRand(b[:])
	}
	return hex.EncodeToString(b[:])
}
