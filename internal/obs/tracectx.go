package obs

import (
	"context"
	"encoding/hex"
	rand "math/rand/v2"
	"strings"
)

// Cross-process propagation headers. Every HTTP hop in the serving
// tier uses exactly these names — the metrichygiene analyzer rejects
// string literals spelling them anywhere else, so a renamed header can
// never silently fork the wire protocol.
const (
	// HeaderRequestID carries the caller-visible request id end to end:
	// client → coordinator → every shard/replica attempt. Shard-side
	// access logs include it, so cross-process log joins work even for
	// queries whose trace was never sampled.
	HeaderRequestID = "X-Request-ID"
	// HeaderTraceparent carries the trace context in the W3C trace
	// context wire format: version "00", a 16-byte trace id, the 8-byte
	// span id of the sender (the parent of everything the receiver
	// records), and a flags byte whose low bit is the sampling decision.
	HeaderTraceparent = "Traceparent"
)

// traceparent wire constants: "00-<32 hex>-<16 hex>-<2 hex>".
const (
	traceparentVersion = "00"
	traceparentLen     = 2 + 1 + 32 + 1 + 16 + 1 + 2
	flagSampled        = 0x01
)

// TraceContext identifies one query's position in a distributed
// trace: which trace it belongs to, which span is the current parent,
// and whether the full span list should be collected and returned
// across process boundaries (the sampling bit). The zero value is
// invalid — contexts come from NewTraceContext (minting a root at the
// edge) or Child (deriving a new span id for a leg, attempt, or
// probe). Tail-based retention does not depend on this bit: stage
// aggregates always flow; the bit only gates full span shipping.
type TraceContext struct {
	TraceID [16]byte
	SpanID  [8]byte
	Sampled bool
}

// NewTraceContext mints a fresh root: a new trace id and a new root
// span id. Only the serving edge (the process that received the query
// from outside) mints roots; interior layers must derive via Child —
// the ctxflow analyzer enforces this for the shard layer.
func NewTraceContext(sampled bool) TraceContext {
	var t TraceContext
	t.Sampled = sampled
	for isZero(t.TraceID[:]) {
		fillRand(t.TraceID[:])
	}
	for isZero(t.SpanID[:]) {
		fillRand(t.SpanID[:])
	}
	return t
}

// Child derives the context for one unit of downstream work — a shard
// leg, a retry or hedge attempt, a health probe — keeping the trace id
// and sampling decision but minting a fresh span id. The child's span
// id is what crosses the wire, so everything the remote side records
// hangs off exactly that attempt.
func (t TraceContext) Child() TraceContext {
	c := t
	for c.SpanID == t.SpanID || isZero(c.SpanID[:]) {
		fillRand(c.SpanID[:])
	}
	return c
}

// Valid reports whether the context carries real ids (the W3C format
// reserves all-zero ids as invalid).
func (t TraceContext) Valid() bool {
	return !isZero(t.TraceID[:]) && !isZero(t.SpanID[:])
}

// Traceparent renders the context in the W3C wire format.
func (t TraceContext) Traceparent() string {
	var b strings.Builder
	b.Grow(traceparentLen)
	b.WriteString(traceparentVersion)
	b.WriteByte('-')
	b.WriteString(t.TraceIDString())
	b.WriteByte('-')
	b.WriteString(t.SpanIDString())
	b.WriteByte('-')
	if t.Sampled {
		b.WriteString("01")
	} else {
		b.WriteString("00")
	}
	return b.String()
}

// TraceIDString is the 32-hex-char trace id.
func (t TraceContext) TraceIDString() string { return hex.EncodeToString(t.TraceID[:]) }

// SpanIDString is the 16-hex-char span id.
func (t TraceContext) SpanIDString() string { return hex.EncodeToString(t.SpanID[:]) }

// ParseTraceparent parses the W3C wire format produced by
// Traceparent. Unknown versions, malformed fields, and all-zero ids
// are rejected (ok=false) — a bad header means "start a fresh trace",
// never an error to the caller.
func ParseTraceparent(s string) (TraceContext, bool) {
	var t TraceContext
	if len(s) != traceparentLen {
		return t, false
	}
	if s[0:2] != traceparentVersion || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return t, false
	}
	if _, err := hex.Decode(t.TraceID[:], []byte(s[3:35])); err != nil {
		return t, false
	}
	if _, err := hex.Decode(t.SpanID[:], []byte(s[36:52])); err != nil {
		return t, false
	}
	var flags [1]byte
	if _, err := hex.Decode(flags[:], []byte(s[53:55])); err != nil {
		return t, false
	}
	t.Sampled = flags[0]&flagSampled != 0
	if !t.Valid() {
		return t, false
	}
	return t, true
}

// fillRand fills b with random bytes. math/rand/v2's package-level
// generator is goroutine-safe and never errors; trace ids need to be
// unique, not unguessable.
func fillRand(b []byte) {
	for i := 0; i < len(b); i += 8 {
		v := rand.Uint64()
		for j := i; j < len(b) && j < i+8; j++ {
			b[j] = byte(v)
			v >>= 8
		}
	}
}

func isZero(b []byte) bool {
	for _, c := range b {
		if c != 0 {
			return false
		}
	}
	return true
}

// Context plumbing. The request id and trace context ride the
// context.Context from the serving edge through the coordinator and
// replica sets to every outbound HTTP call; they live here (not in the
// server package) because the shard layer must read them without
// importing the server.

type traceKey struct{}
type requestIDKey struct{}

// ContextWithTrace returns a context carrying tc.
func ContextWithTrace(ctx context.Context, tc TraceContext) context.Context {
	return context.WithValue(ctx, traceKey{}, tc)
}

// TraceFromContext returns the trace context the request is running
// under, if any.
func TraceFromContext(ctx context.Context) (TraceContext, bool) {
	tc, ok := ctx.Value(traceKey{}).(TraceContext)
	return tc, ok && tc.Valid()
}

// ContextWithRequestID returns a context carrying the request id.
func ContextWithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestIDFromContext returns the request id, or "" when the context
// does not carry one.
func RequestIDFromContext(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}
