package obs

import (
	"context"
	"strings"
	"testing"
)

func TestTraceparentRoundTrip(t *testing.T) {
	for _, sampled := range []bool{false, true} {
		tc := NewTraceContext(sampled)
		if !tc.Valid() {
			t.Fatalf("NewTraceContext produced an invalid context: %+v", tc)
		}
		wire := tc.Traceparent()
		if len(wire) != traceparentLen {
			t.Fatalf("traceparent %q: len %d, want %d", wire, len(wire), traceparentLen)
		}
		if !strings.HasPrefix(wire, "00-") {
			t.Fatalf("traceparent %q: want version 00", wire)
		}
		got, ok := ParseTraceparent(wire)
		if !ok {
			t.Fatalf("ParseTraceparent(%q) rejected its own output", wire)
		}
		if got != tc {
			t.Fatalf("round trip: got %+v, want %+v", got, tc)
		}
		if got.Sampled != sampled {
			t.Fatalf("sampling bit lost: %q", wire)
		}
	}
}

func TestParseTraceparentRejectsMalformed(t *testing.T) {
	valid := NewTraceContext(true).Traceparent()
	bad := []string{
		"",
		"00",
		valid[:len(valid)-1],                // truncated
		valid + "0",                         // too long
		"01" + valid[2:],                    // unknown version
		strings.Replace(valid, "-", "_", 1), // wrong separator
		"00-" + strings.Repeat("z", 32) + valid[35:],      // non-hex trace id
		"00-" + strings.Repeat("0", 32) + valid[35:],      // all-zero trace id
		valid[:36] + strings.Repeat("0", 16) + valid[52:], // all-zero span id
		valid[:53] + "zz", // non-hex flags
	}
	for _, s := range bad {
		if _, ok := ParseTraceparent(s); ok {
			t.Errorf("ParseTraceparent(%q) = ok, want rejection", s)
		}
	}
}

func TestChildKeepsTraceMintsSpan(t *testing.T) {
	root := NewTraceContext(true)
	seen := map[string]bool{root.SpanIDString(): true}
	for i := 0; i < 64; i++ {
		c := root.Child()
		if c.TraceID != root.TraceID {
			t.Fatalf("child %d changed the trace id", i)
		}
		if !c.Sampled {
			t.Fatalf("child %d dropped the sampling bit", i)
		}
		if seen[c.SpanIDString()] {
			t.Fatalf("child %d reused span id %s", i, c.SpanIDString())
		}
		seen[c.SpanIDString()] = true
	}
}

func TestTraceContextPlumbing(t *testing.T) {
	ctx := context.Background()
	if _, ok := TraceFromContext(ctx); ok {
		t.Fatal("empty context reported a trace")
	}
	if id := RequestIDFromContext(ctx); id != "" {
		t.Fatalf("empty context reported request id %q", id)
	}
	tc := NewTraceContext(false)
	ctx = ContextWithTrace(ctx, tc)
	ctx = ContextWithRequestID(ctx, "req-1")
	got, ok := TraceFromContext(ctx)
	if !ok || got != tc {
		t.Fatalf("TraceFromContext = %+v, %v; want %+v", got, ok, tc)
	}
	if id := RequestIDFromContext(ctx); id != "req-1" {
		t.Fatalf("RequestIDFromContext = %q, want req-1", id)
	}
	// An invalid context stored by a buggy caller reads back as absent.
	if _, ok := TraceFromContext(ContextWithTrace(context.Background(), TraceContext{})); ok {
		t.Fatal("zero trace context reported as valid")
	}
}
