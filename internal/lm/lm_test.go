package lm

import (
	"math/rand"
	"reflect"
	"testing"

	"ndss/internal/corpus"
)

func trainOn(t *testing.T, texts [][]uint32, cfg Config) *Model {
	t.Helper()
	m, err := Train(corpus.New(texts), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(corpus.New(nil), Config{Order: 0}); err == nil {
		t.Fatal("Order=0 should fail")
	}
}

func TestNextDistributionBackoff(t *testing.T) {
	// Text: 1 2 3 1 2 4 — after context (1,2) both 3 and 4 occur.
	m := trainOn(t, [][]uint32{{1, 2, 3, 1, 2, 4}}, Config{Order: 3})
	cands := m.NextDistribution([]uint32{1, 2})
	if len(cands) != 2 {
		t.Fatalf("cands = %+v", cands)
	}
	// Counts equal: tie broken by token id.
	if cands[0].Token != 3 || cands[1].Token != 4 {
		t.Fatalf("cands = %+v", cands)
	}
	// Unknown bigram context backs off to unigram distribution.
	off := m.NextDistribution([]uint32{99, 98})
	if len(off) == 0 {
		t.Fatal("backoff to root failed")
	}
	// Root context: all five distinct tokens seen.
	root := m.NextDistribution(nil)
	if len(root) != 4 {
		t.Fatalf("root cands = %+v", root)
	}
}

func TestGreedyDeterministic(t *testing.T) {
	// 1 is followed by 2 twice and by 3 once: greedy must pick 2.
	m := trainOn(t, [][]uint32{{1, 2, 1, 2, 1, 3}}, Config{Order: 2})
	cands := m.NextDistribution([]uint32{1})
	if got := (Greedy{}).Pick(cands, nil); got != 2 {
		t.Fatalf("greedy picked %d", got)
	}
}

func TestGenerateReproducesChain(t *testing.T) {
	// A deterministic chain: every token has a unique successor, so any
	// sampler regenerates the training text.
	text := []uint32{10, 11, 12, 13, 14, 15, 16, 17}
	m := trainOn(t, [][]uint32{text}, Config{Order: 2})
	rng := rand.New(rand.NewSource(1))
	got := m.Generate([]uint32{10}, 7, TopK{K: 50}, rng)
	if !reflect.DeepEqual(got, text[1:]) {
		t.Fatalf("generate = %v, want %v", got, text[1:])
	}
}

func TestGenerateUnprompted(t *testing.T) {
	c := corpus.MustSynthesize(corpus.SynthConfig{
		NumTexts: 30, MinLength: 50, MaxLength: 100, VocabSize: 100, ZipfS: 1.3, Seed: 4,
	})
	m, err := Train(c, Config{Order: 3})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	out := m.Generate(nil, 64, TopK{K: 10}, rng)
	if len(out) != 64 {
		t.Fatalf("generated %d tokens", len(out))
	}
}

func TestGenerateEmptyModel(t *testing.T) {
	m := trainOn(t, nil, Config{Order: 2})
	if out := m.Generate(nil, 10, Greedy{}, nil); len(out) != 0 {
		t.Fatalf("empty model generated %v", out)
	}
}

func TestCapacityPruning(t *testing.T) {
	c := corpus.MustSynthesize(corpus.SynthConfig{
		NumTexts: 20, MinLength: 50, MaxLength: 80, VocabSize: 50, ZipfS: 1.2, Seed: 9,
	})
	full, err := Train(c, Config{Order: 3})
	if err != nil {
		t.Fatal(err)
	}
	small, err := Train(c, Config{Order: 3, MaxContexts: 50})
	if err != nil {
		t.Fatal(err)
	}
	if small.NumContexts() != 50 {
		t.Fatalf("pruned model has %d contexts, want 50", small.NumContexts())
	}
	if full.NumContexts() <= 50 {
		t.Fatalf("full model only has %d contexts", full.NumContexts())
	}
	// Root context must survive pruning even with a tiny budget.
	tiny, err := Train(c, Config{Order: 3, MaxContexts: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := tiny.NextDistribution(nil); len(got) == 0 {
		t.Fatal("root context pruned away")
	}
}

// TestCapacityIncreasesMemorization is the core substitution property:
// a larger-capacity model reproduces longer training spans verbatim.
func TestCapacityIncreasesMemorization(t *testing.T) {
	c := corpus.MustSynthesize(corpus.SynthConfig{
		NumTexts: 40, MinLength: 80, MaxLength: 150, VocabSize: 2000, ZipfS: 1.5, Seed: 31,
		DupRate: 0.3, DupSnippetLen: 40, DupMutateProb: 0,
	})
	score := func(m *Model, seed int64) int {
		// Count generated 8-gram hits in the training corpus.
		rng := rand.New(rand.NewSource(seed))
		hits := 0
		grams := map[[8]uint32]bool{}
		for id := 0; id < c.NumTexts(); id++ {
			text := c.Text(uint32(id))
			for i := 0; i+8 <= len(text); i++ {
				var g [8]uint32
				copy(g[:], text[i:i+8])
				grams[g] = true
			}
		}
		for trial := 0; trial < 20; trial++ {
			out := m.Generate(nil, 64, TopK{K: 20}, rng)
			for i := 0; i+8 <= len(out); i++ {
				var g [8]uint32
				copy(g[:], out[i:i+8])
				if grams[g] {
					hits++
				}
			}
		}
		return hits
	}
	big, err := Train(c, Config{Order: 5})
	if err != nil {
		t.Fatal(err)
	}
	small, err := Train(c, Config{Order: 2})
	if err != nil {
		t.Fatal(err)
	}
	bigHits := score(big, 7)
	smallHits := score(small, 7)
	if bigHits <= smallHits {
		t.Fatalf("larger model should memorize more: big=%d small=%d", bigHits, smallHits)
	}
}

func TestTopKRestrictsSupport(t *testing.T) {
	cands := []Cand{{Token: 1, Count: 100}, {Token: 2, Count: 50}, {Token: 3, Count: 1}}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		if got := (TopK{K: 2}).Pick(cands, rng); got == 3 {
			t.Fatal("top-2 sampled outside the top 2")
		}
	}
	// K larger than candidates is clamped.
	seen := map[uint32]bool{}
	for i := 0; i < 500; i++ {
		seen[(TopK{K: 10}).Pick(cands, rng)] = true
	}
	if !seen[1] || !seen[2] {
		t.Fatal("clamped top-k missed likely tokens")
	}
}

func TestTopPNucleus(t *testing.T) {
	cands := []Cand{{Token: 1, Count: 90}, {Token: 2, Count: 9}, {Token: 3, Count: 1}}
	rng := rand.New(rand.NewSource(6))
	// P=0.9: nucleus is exactly {1}.
	for i := 0; i < 100; i++ {
		if got := (TopP{P: 0.9}).Pick(cands, rng); got != 1 {
			t.Fatalf("nucleus sampling picked %d", got)
		}
	}
	// P=1 (and invalid P) use the full distribution.
	seen := map[uint32]bool{}
	for i := 0; i < 2000; i++ {
		seen[(TopP{P: 0}).Pick(cands, rng)] = true
	}
	if len(seen) != 3 {
		t.Fatalf("full nucleus saw %d tokens", len(seen))
	}
}

func TestRandomSamplerProportions(t *testing.T) {
	cands := []Cand{{Token: 1, Count: 900}, {Token: 2, Count: 100}}
	rng := rand.New(rand.NewSource(7))
	count1 := 0
	for i := 0; i < 5000; i++ {
		if (Random{}).Pick(cands, rng) == 1 {
			count1++
		}
	}
	frac := float64(count1) / 5000
	if frac < 0.85 || frac > 0.95 {
		t.Fatalf("token 1 sampled %.3f of the time, want ~0.9", frac)
	}
}

func TestBeamSearch(t *testing.T) {
	// Chain with a fork: 1->2 (2x), 1->3 (1x); 2->4; 3->5.
	m := trainOn(t, [][]uint32{{1, 2, 4, 1, 2, 4, 1, 3, 5}}, Config{Order: 2})
	got := m.BeamSearch([]uint32{1}, 2, 3)
	if !reflect.DeepEqual(got, []uint32{2, 4}) {
		t.Fatalf("beam = %v, want [2 4]", got)
	}
	// Width 1 equals greedy.
	greedy := m.BeamSearch([]uint32{1}, 2, 1)
	if !reflect.DeepEqual(greedy, []uint32{2, 4}) {
		t.Fatalf("width-1 beam = %v", greedy)
	}
}

func TestBeamSearchDeadEnd(t *testing.T) {
	m := trainOn(t, nil, Config{Order: 2})
	if got := m.BeamSearch(nil, 5, 2); len(got) != 0 {
		t.Fatalf("empty model beam = %v", got)
	}
}
