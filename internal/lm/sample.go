package lm

import (
	"math"
	"math/rand"
	"sort"
)

// Sampler picks the next token from a candidate distribution. Candidates
// arrive sorted by descending count.
type Sampler interface {
	Pick(cands []Cand, rng *rand.Rand) uint32
}

// Greedy always picks the most frequent next token (the paper's greedy
// search).
type Greedy struct{}

// Pick returns the top candidate.
func (Greedy) Pick(cands []Cand, _ *rand.Rand) uint32 { return cands[0].Token }

// Random samples from the full learned distribution (the paper's
// "random sampling based on the learned probability distribution").
type Random struct{}

// Pick samples proportionally to counts.
func (Random) Pick(cands []Cand, rng *rand.Rand) uint32 {
	return weightedPick(cands, rng)
}

// TopK samples from the K most probable candidates, the strategy the
// paper's memorization evaluation uses (top-50).
type TopK struct {
	K int
}

// Pick samples proportionally among the top K candidates.
func (s TopK) Pick(cands []Cand, rng *rand.Rand) uint32 {
	k := s.K
	if k < 1 {
		k = 1
	}
	if k > len(cands) {
		k = len(cands)
	}
	return weightedPick(cands[:k], rng)
}

// TopP samples from the smallest prefix of candidates whose cumulative
// probability reaches P (nucleus sampling).
type TopP struct {
	P float64
}

// Pick samples from the nucleus.
func (s TopP) Pick(cands []Cand, rng *rand.Rand) uint32 {
	p := s.P
	if p <= 0 || p > 1 {
		p = 1
	}
	var total int64
	for _, c := range cands {
		total += c.Count
	}
	target := int64(p * float64(total))
	var cum int64
	cut := len(cands)
	for i, c := range cands {
		cum += c.Count
		if cum >= target {
			cut = i + 1
			break
		}
	}
	return weightedPick(cands[:cut], rng)
}

func weightedPick(cands []Cand, rng *rand.Rand) uint32 {
	var total int64
	for _, c := range cands {
		total += c.Count
	}
	x := rng.Int63n(total)
	for _, c := range cands {
		x -= c.Count
		if x < 0 {
			return c.Token
		}
	}
	return cands[len(cands)-1].Token
}

// BeamSearch generates length tokens after prompt keeping the width most
// probable partial sequences at each step (the paper's beam search). It
// returns the highest-scoring beam. Scores are sums of log-probability
// surrogates (log of count fractions).
func (m *Model) BeamSearch(prompt []uint32, length, width int) []uint32 {
	if width < 1 {
		width = 1
	}
	type beam struct {
		tokens []uint32
		score  float64
	}
	beams := []beam{{tokens: append([]uint32{}, prompt...)}}
	for step := 0; step < length; step++ {
		var next []beam
		for _, b := range beams {
			cands := m.NextDistribution(b.tokens)
			if len(cands) == 0 {
				next = append(next, b)
				continue
			}
			var total int64
			for _, c := range cands {
				total += c.Count
			}
			limit := width
			if limit > len(cands) {
				limit = len(cands)
			}
			for _, c := range cands[:limit] {
				tokens := make([]uint32, len(b.tokens), len(b.tokens)+1)
				copy(tokens, b.tokens)
				next = append(next, beam{
					tokens: append(tokens, c.Token),
					score:  b.score + logFrac(c.Count, total),
				})
			}
		}
		sort.Slice(next, func(i, j int) bool { return next[i].score > next[j].score })
		if len(next) > width {
			next = next[:width]
		}
		beams = next
	}
	best := beams[0].tokens
	return best[len(prompt):]
}

// logFrac is the log-probability surrogate log(num/den).
func logFrac(num, den int64) float64 {
	return math.Log(float64(num)) - math.Log(float64(den))
}
