package lm

import (
	"fmt"
	"math"
)

// Perplexity computes the model's perplexity on a token sequence:
// exp(-1/n * sum log p(x_i | x_<i)), the standard language-model quality
// metric (§2 of the paper defines training as minimizing exactly this
// log loss). Unseen tokens are assigned an add-one-smoothed floor
// probability so the result stays finite.
func (m *Model) Perplexity(text []uint32) (float64, error) {
	if len(text) == 0 {
		return 0, fmt.Errorf("lm: perplexity of an empty sequence is undefined")
	}
	var logSum float64
	for i := range text {
		logSum += math.Log(m.prob(text[:i], text[i]))
	}
	return math.Exp(-logSum / float64(len(text))), nil
}

// prob returns the smoothed probability of next following context.
func (m *Model) prob(context []uint32, next uint32) float64 {
	cands := m.NextDistribution(context)
	var total, hit int64
	for _, c := range cands {
		total += c.Count
		if c.Token == next {
			hit = c.Count
		}
	}
	// Add-one smoothing over the candidate support plus one unseen
	// bucket; an empty model yields the floor for everything.
	return float64(hit+1) / float64(total+int64(len(cands))+1)
}
