package lm

import (
	"math/rand"
	"testing"

	"ndss/internal/corpus"
)

func TestPerplexityEmpty(t *testing.T) {
	m := trainOn(t, [][]uint32{{1, 2, 3}}, Config{Order: 2})
	if _, err := m.Perplexity(nil); err == nil {
		t.Fatal("empty sequence should error")
	}
}

func TestPerplexityDeterministicChain(t *testing.T) {
	// A fully deterministic chain has near-1 conditional probabilities
	// (less smoothing), so perplexity is low.
	text := []uint32{10, 11, 12, 13, 14, 15, 16, 17, 10, 11, 12, 13, 14, 15, 16, 17}
	m := trainOn(t, [][]uint32{text}, Config{Order: 3})
	pp, err := m.Perplexity(text)
	if err != nil {
		t.Fatal(err)
	}
	if pp > 3 {
		t.Fatalf("chain perplexity %v, want small", pp)
	}
}

func TestPerplexityTrainVsRandom(t *testing.T) {
	c := corpus.MustSynthesize(corpus.SynthConfig{
		NumTexts: 50, MinLength: 100, MaxLength: 200, VocabSize: 500,
		ZipfS: 1.3, Seed: 7,
	})
	m, err := Train(c, Config{Order: 3})
	if err != nil {
		t.Fatal(err)
	}
	train, err := m.Perplexity(c.Text(0))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	random := make([]uint32, 150)
	for i := range random {
		random[i] = uint32(rng.Intn(500))
	}
	rnd, err := m.Perplexity(random)
	if err != nil {
		t.Fatal(err)
	}
	if train >= rnd {
		t.Fatalf("training text perplexity %v should beat random %v", train, rnd)
	}
}

func TestPerplexityCapacityHelps(t *testing.T) {
	c := corpus.MustSynthesize(corpus.SynthConfig{
		NumTexts: 50, MinLength: 100, MaxLength: 200, VocabSize: 500,
		ZipfS: 1.3, Seed: 9,
	})
	big, err := Train(c, Config{Order: 4})
	if err != nil {
		t.Fatal(err)
	}
	small, err := Train(c, Config{Order: 1})
	if err != nil {
		t.Fatal(err)
	}
	text := c.Text(3)
	ppBig, _ := big.Perplexity(text)
	ppSmall, _ := small.Perplexity(text)
	if ppBig >= ppSmall {
		t.Fatalf("order-4 perplexity %v should beat order-1 %v on training data", ppBig, ppSmall)
	}
}
