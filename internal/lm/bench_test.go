package lm

import (
	"math/rand"
	"testing"

	"ndss/internal/corpus"
)

func benchTrainCorpus(b *testing.B) *corpus.Corpus {
	b.Helper()
	return corpus.MustSynthesize(corpus.SynthConfig{
		NumTexts: 200, MinLength: 100, MaxLength: 300,
		VocabSize: 10000, ZipfS: 1.1, Seed: 1,
	})
}

func BenchmarkTrainOrder3(b *testing.B) {
	c := benchTrainCorpus(b)
	b.SetBytes(c.TotalTokens() * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(c, Config{Order: 3}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGenerateTopK(b *testing.B) {
	c := benchTrainCorpus(b)
	m, err := Train(c, Config{Order: 3})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Generate(nil, 128, TopK{K: 50}, rng)
	}
}

func BenchmarkBeamSearch(b *testing.B) {
	c := benchTrainCorpus(b)
	m, err := Train(c, Config{Order: 3})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.BeamSearch(nil, 32, 4)
	}
}
