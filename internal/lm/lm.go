// Package lm provides the language-model substrate for the memorization
// evaluation (paper §5). The paper samples from pre-trained GPT-2 /
// GPT-Neo checkpoints of growing size; offline we substitute a back-off
// n-gram language model whose "model size" is a capacity knob (maximum
// n-gram order × number of retained contexts). Like the neural models,
// a larger-capacity n-gram model reproduces longer training spans
// verbatim, which is exactly the behaviour the evaluation pipeline
// measures — see DESIGN.md's substitution table.
//
// All of the paper's generation strategies are implemented: greedy
// search, random sampling, top-k sampling, top-p (nucleus) sampling and
// beam search.
package lm

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"

	"ndss/internal/corpus"
)

// Config controls model training.
type Config struct {
	// Order is the maximum n-gram order; contexts of up to Order-1
	// tokens are conditioned on. Must be >= 1.
	Order int
	// MaxContexts caps the number of retained contexts across all
	// orders — the capacity knob standing in for parameter count. The
	// highest-frequency contexts are kept. Zero means unlimited.
	MaxContexts int
}

// Cand is one candidate next token with its training count.
type Cand struct {
	Token uint32
	Count int64
}

// dist is the next-token distribution of one context, sorted by
// descending count (ties by token id for determinism).
type dist struct {
	cands []Cand
	total int64
}

// Model is a trained back-off n-gram language model.
type Model struct {
	order int
	// tables[o] maps a context of o tokens (byte-encoded) to its
	// distribution.
	tables []map[string]*dist
}

// contextKey encodes a token slice as a map key.
func contextKey(ctx []uint32) string {
	buf := make([]byte, 4*len(ctx))
	for i, tok := range ctx {
		binary.LittleEndian.PutUint32(buf[4*i:], tok)
	}
	return string(buf)
}

// Train builds a model from a corpus.
func Train(c *corpus.Corpus, cfg Config) (*Model, error) {
	if cfg.Order < 1 {
		return nil, fmt.Errorf("lm: Order must be >= 1, got %d", cfg.Order)
	}
	counts := make([]map[string]map[uint32]int64, cfg.Order)
	for o := range counts {
		counts[o] = make(map[string]map[uint32]int64)
	}
	for id := 0; id < c.NumTexts(); id++ {
		text := c.Text(uint32(id))
		for i := 0; i < len(text); i++ {
			next := text[i]
			for o := 0; o < cfg.Order && o <= i; o++ {
				key := contextKey(text[i-o : i])
				m := counts[o][key]
				if m == nil {
					m = make(map[uint32]int64)
					counts[o][key] = m
				}
				m[next]++
			}
		}
	}
	model := &Model{order: cfg.Order, tables: make([]map[string]*dist, cfg.Order)}
	for o := range model.tables {
		model.tables[o] = make(map[string]*dist, len(counts[o]))
	}

	// Capacity pruning: keep the highest-total contexts. The empty
	// (unigram) context is always retained so generation never dies.
	type ctxRef struct {
		order int
		key   string
		total int64
	}
	var refs []ctxRef
	for o := range counts {
		for key, m := range counts[o] {
			var total int64
			for _, n := range m {
				total += n
			}
			refs = append(refs, ctxRef{order: o, key: key, total: total})
		}
	}
	if cfg.MaxContexts > 0 && len(refs) > cfg.MaxContexts {
		sort.Slice(refs, func(i, j int) bool {
			if refs[i].total != refs[j].total {
				return refs[i].total > refs[j].total
			}
			if refs[i].order != refs[j].order {
				return refs[i].order < refs[j].order
			}
			return refs[i].key < refs[j].key
		})
		kept := refs[:cfg.MaxContexts]
		hasRoot := false
		for _, r := range kept {
			if r.order == 0 {
				hasRoot = true
				break
			}
		}
		if !hasRoot {
			kept[len(kept)-1] = ctxRef{order: 0, key: ""}
		}
		refs = kept
	}
	for _, r := range refs {
		m := counts[r.order][r.key]
		d := &dist{cands: make([]Cand, 0, len(m))}
		for tok, n := range m {
			d.cands = append(d.cands, Cand{Token: tok, Count: n})
			d.total += n
		}
		sort.Slice(d.cands, func(i, j int) bool {
			if d.cands[i].Count != d.cands[j].Count {
				return d.cands[i].Count > d.cands[j].Count
			}
			return d.cands[i].Token < d.cands[j].Token
		})
		model.tables[r.order][r.key] = d
	}
	return model, nil
}

// Order returns the model's maximum n-gram order.
func (m *Model) Order() int { return m.order }

// NumContexts returns the number of retained contexts (the effective
// model size).
func (m *Model) NumContexts() int {
	n := 0
	for _, t := range m.tables {
		n += len(t)
	}
	return n
}

// NextDistribution returns the next-token candidates after context,
// backing off to shorter contexts until one is known. The returned slice
// is shared with the model and must not be modified.
func (m *Model) NextDistribution(context []uint32) []Cand {
	maxCtx := m.order - 1
	if len(context) < maxCtx {
		maxCtx = len(context)
	}
	for o := maxCtx; o >= 0; o-- {
		key := contextKey(context[len(context)-o:])
		if d, ok := m.tables[o][key]; ok {
			return d.cands
		}
	}
	return nil
}

// Generate produces length tokens after the (possibly empty) prompt
// using the given sampler. The prompt is not included in the output.
// Generation stops early only if the model is completely empty.
func (m *Model) Generate(prompt []uint32, length int, s Sampler, rng *rand.Rand) []uint32 {
	history := append([]uint32{}, prompt...)
	out := make([]uint32, 0, length)
	for i := 0; i < length; i++ {
		cands := m.NextDistribution(history)
		if len(cands) == 0 {
			break
		}
		tok := s.Pick(cands, rng)
		out = append(out, tok)
		history = append(history, tok)
	}
	return out
}
