package leakcheck

import (
	"os"
	"strings"
	"testing"
	"time"
)

func TestCheckCleanPasses(t *testing.T) {
	if err := Check(2 * time.Second); err != nil {
		t.Fatalf("clean state reported as leak: %v", err)
	}
}

func TestCheckDetectsBlockedGoroutine(t *testing.T) {
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-release
	}()
	err := Check(50 * time.Millisecond)
	if err == nil {
		t.Fatal("blocked goroutine not reported")
	}
	if !strings.Contains(err.Error(), "TestCheckDetectsBlockedGoroutine") {
		t.Fatalf("leak report does not name the leaking frame:\n%v", err)
	}
	if !strings.Contains(err.Error(), "gospawn") {
		t.Fatalf("leak report does not point at the invariant doc:\n%v", err)
	}
	close(release)
	<-done
}

// A goroutine that exits during the grace window is not a leak: the
// retry loop must absorb asynchronous shutdown.
func TestCheckAbsorbsInFlightExit(t *testing.T) {
	release := make(chan struct{})
	go func() {
		<-release
	}()
	time.AfterFunc(20*time.Millisecond, func() { close(release) })
	if err := Check(2 * time.Second); err != nil {
		t.Fatalf("goroutine exiting within the grace window reported as leak: %v", err)
	}
}

func TestEnabledGate(t *testing.T) {
	old, had := os.LookupEnv("NDSS_LEAKCHECK")
	defer func() {
		if had {
			os.Setenv("NDSS_LEAKCHECK", old)
		} else {
			os.Unsetenv("NDSS_LEAKCHECK")
		}
	}()
	for val, want := range map[string]bool{
		"": true, "1": true, "yes": true,
		"0": false, "false": false, "off": false, "OFF": false,
	} {
		os.Setenv("NDSS_LEAKCHECK", val)
		if val == "" {
			os.Unsetenv("NDSS_LEAKCHECK")
		}
		if got := Enabled(); got != want {
			t.Errorf("Enabled() with NDSS_LEAKCHECK=%q = %v, want %v", val, got, want)
		}
	}
}
