// Package leakcheck is a dependency-free goroutine-leak verifier for
// test binaries, the dynamic half of the gospawn invariant
// (docs/INVARIANTS.md#gospawn): the static analyzer proves every spawn
// site has a termination contract, and leakcheck proves the contracts
// are honored — after a package's tests finish, no query, prober, or
// compactor goroutine may still be running. A leaked goroutine in
// production is a slow OOM under sustained traffic; in tests it is
// cross-test contamination that the race detector happily schedules.
//
// Install it with one TestMain per suite:
//
//	func TestMain(m *testing.M) { os.Exit(leakcheck.Main(m)) }
//
// The check snapshots all goroutine stacks (runtime.Stack with all
// set), drops stanzas whose frames belong to the runtime, the testing
// framework, or other known-forever goroutines, and retries over a
// grace window so goroutines that are mid-exit (a just-canceled prober
// draining its ticker, an http keep-alive connection observing its
// server's close) are not misreported. Only goroutines still alive
// when the window closes fail the binary.
//
// Set NDSS_LEAKCHECK=0 to disable the check for one-off debugging
// (documented in README; the Makefile exports the knob).
package leakcheck

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"
)

// Enabled reports whether the leak check should run: on by default,
// disabled by NDSS_LEAKCHECK=0/false/off.
func Enabled() bool {
	switch strings.ToLower(os.Getenv("NDSS_LEAKCHECK")) {
	case "0", "false", "off":
		return false
	}
	return true
}

// Main wraps m.Run with a leak check and returns the exit code for
// os.Exit. A failing test suite returns its own code unmodified — leak
// output would only bury the real failure (and a failed test is
// entitled to have abandoned goroutines mid-flight).
func Main(m *testing.M) int {
	code := m.Run()
	if code != 0 || !Enabled() {
		return code
	}
	if err := Check(5 * time.Second); err != nil {
		fmt.Fprintf(os.Stderr, "leakcheck: %v\n", err)
		return 1
	}
	return code
}

// Check polls until no leaked goroutines remain or the grace window
// expires, then reports the survivors. The retry loop is what makes
// the check sound at all: goroutine exit is asynchronous with the
// channel receive or WaitGroup.Wait that proves shutdown, so a single
// snapshot taken "after" Close races with perfectly-behaved goroutines
// that simply have not been scheduled off the runqueue yet.
func Check(grace time.Duration) error {
	deadline := time.Now().Add(grace)
	delay := 1 * time.Millisecond
	var leaked []string
	for {
		leaked = leakedGoroutines()
		if len(leaked) == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(delay)
		if delay < 100*time.Millisecond {
			delay *= 2
		}
	}
	return fmt.Errorf("%d goroutine(s) still running after the test suite (termination contracts are enforced; see docs/INVARIANTS.md#gospawn):\n\n%s",
		len(leaked), strings.Join(leaked, "\n\n"))
}

// runtimeFrames identify goroutines owned by the runtime, the testing
// framework, or process-lifetime plumbing; a stanza containing any of
// them is never a leak.
var runtimeFrames = []string{
	"testing.Main(",
	"testing.tRunner(",
	"testing.(*T).Run(",
	"testing.(*M).",
	"testing.runTests(",
	"testing.runFuzzing(",
	"testing.runFuzzTests(",
	"runtime.goexit0",
	"runtime.gc",
	"runtime.bgsweep",
	"runtime.bgscavenge",
	"runtime.forcegchelper",
	"runtime.ReadTrace",
	"runtime/pprof.",
	"runtime/trace.",
	"os/signal.signal_recv",
	"os/signal.loop",
	"created by runtime",
}

// leakedGoroutines returns the stack stanzas of goroutines that belong
// to neither the runtime nor the testing framework. The first stanza —
// the goroutine running the check — is always skipped.
func leakedGoroutines() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	stanzas := strings.Split(string(buf), "\n\n")
	var leaked []string
	for i, s := range stanzas {
		s = strings.TrimSpace(s)
		if s == "" || i == 0 { // stanza 0 is this goroutine
			continue
		}
		if isRuntimeStanza(s) {
			continue
		}
		leaked = append(leaked, s)
	}
	return leaked
}

func isRuntimeStanza(s string) bool {
	for _, f := range runtimeFrames {
		if strings.Contains(s, f) {
			return true
		}
	}
	// A goroutine parked in "runnable" or "running" with no interesting
	// frames can be the scheduler mid-handoff; the caller's retry loop
	// deals with transients, so no special case here.
	return false
}
