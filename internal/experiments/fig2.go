package experiments

import (
	"fmt"

	"ndss/internal/index"
	"ndss/internal/window"
)

// Figure 2 — index construction (paper §4.1): number of compact windows,
// index size and index time, under varying length threshold t, number of
// hash functions k, vocabulary size and corpus size.

func init() {
	register("fig2ab", "Fig 2(a-b): #compact windows vs length threshold t, hash count k, vocab size", fig2ab)
	register("fig2cd", "Fig 2(c-d): #compact windows vs corpus size (linear scaling)", fig2cd)
	register("fig2eh", "Fig 2(e-h): index size vs t, k, vocab, corpus size", fig2eh)
	register("fig2il", "Fig 2(i-l): index time (generation vs I/O) vs t, k, corpus size", fig2il)
}

func fig2ab(e *Env) error {
	e.printf("## Fig 2(a-b): compact windows generated vs t (k=1) and vs k (t=100)\n")
	e.printf("corpus: SynWeb 1x, vocab in {32000, 64000}\n\n")
	w := e.table()
	fmt.Fprintln(w, "vocab\tt\tk\twindows\texpected(2N/(t+1)-1 per text)")
	for _, vocab := range []int{32000, 64000} {
		c := e.synWeb(1, vocab, 1)
		n := c.TotalTokens()
		for _, t := range []int{25, 50, 100, 200} {
			ix, _, err := e.buildIndex(fmt.Sprintf("f2ab-v%d", vocab), c, index.BuildOptions{K: 1, Seed: 7, T: t})
			if err != nil {
				return err
			}
			exp := 0.0
			for id := 0; id < c.NumTexts(); id++ {
				exp += window.ExpectedCount(len(c.Text(uint32(id))), t)
			}
			fmt.Fprintf(w, "%d\t%d\t1\t%d\t%.0f\n", vocab, t, ix.TotalPostings(), exp)
			_ = n
		}
	}
	// Windows grow linearly with k (t fixed at 100).
	c := e.synWeb(1, 32000, 1)
	for _, k := range []int{1, 2, 4, 8} {
		ix, _, err := e.buildIndex("f2ab-kscale", c, index.BuildOptions{K: k, Seed: 7, T: 100})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "32000\t100\t%d\t%d\t(linear in k)\n", k, ix.TotalPostings())
	}
	return w.Flush()
}

func fig2cd(e *Env) error {
	e.printf("## Fig 2(c-d): compact windows vs corpus size (k=1, t=100, vocab 64K)\n\n")
	w := e.table()
	fmt.Fprintln(w, "size\ttexts\ttokens\twindows\twindows/tokens")
	for _, mult := range []int{1, 2, 4, 8} {
		c := e.synWeb(mult, 64000, 1)
		ix, _, err := e.buildIndex(fmt.Sprintf("f2cd-m%d", mult), c, index.BuildOptions{K: 1, Seed: 7, T: 100})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%dx\t%d\t%d\t%d\t%.5f\n",
			mult, c.NumTexts(), c.TotalTokens(), ix.TotalPostings(),
			float64(ix.TotalPostings())/float64(c.TotalTokens()))
	}
	return w.Flush()
}

func fig2eh(e *Env) error {
	e.printf("## Fig 2(e-h): index size on disk\n\n")
	w := e.table()
	fmt.Fprintln(w, "series\tparam\tindex bytes\tcorpus bytes\tratio")
	c := e.synWeb(1, 32000, 1)
	corpusBytes := c.TotalTokens() * 4
	for _, t := range []int{25, 50, 100, 200} {
		ix, _, err := e.buildIndex("f2ab-v32000", c, index.BuildOptions{K: 1, Seed: 7, T: t})
		if err != nil {
			return err
		}
		size, err := ix.SizeOnDisk()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "vs t (k=1)\tt=%d\t%d\t%d\t%.4f\n", t, size, corpusBytes, float64(size)/float64(corpusBytes))
	}
	for _, k := range []int{1, 2, 4, 8} {
		ix, _, err := e.buildIndex("f2ab-kscale", c, index.BuildOptions{K: k, Seed: 7, T: 100})
		if err != nil {
			return err
		}
		size, err := ix.SizeOnDisk()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "vs k (t=100)\tk=%d\t%d\t%d\t%.4f\n", k, size, corpusBytes, float64(size)/float64(corpusBytes))
	}
	for _, mult := range []int{1, 2, 4, 8} {
		cm := e.synWeb(mult, 64000, 1)
		ix, _, err := e.buildIndex(fmt.Sprintf("f2cd-m%d", mult), cm, index.BuildOptions{K: 1, Seed: 7, T: 100})
		if err != nil {
			return err
		}
		size, err := ix.SizeOnDisk()
		if err != nil {
			return err
		}
		cb := cm.TotalTokens() * 4
		fmt.Fprintf(w, "vs size (k=1,t=100)\t%dx\t%d\t%d\t%.4f\n", mult, size, cb, float64(size)/float64(cb))
	}
	return w.Flush()
}

func fig2il(e *Env) error {
	e.printf("## Fig 2(i-l): index time split into window generation (CPU) and I/O\n")
	e.printf("(fresh builds; not cached)\n\n")
	w := e.table()
	fmt.Fprintln(w, "series\tparam\tgen ms\tio ms\ttotal ms")
	c := e.synWeb(1, 32000, 1)
	for _, t := range []int{25, 50, 100, 200} {
		_, stats, err := e.buildIndex(fmt.Sprintf("f2il-t%d", t), c, index.BuildOptions{K: 1, Seed: 11, T: t})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "vs t (k=1)\tt=%d\t%s\t%s\t%s\n", t, ms(stats.GenTime), ms(stats.IOTime), ms(stats.GenTime+stats.IOTime))
	}
	for _, k := range []int{1, 2, 4, 8} {
		_, stats, err := e.buildIndex(fmt.Sprintf("f2il-k%d", k), c, index.BuildOptions{K: k, Seed: 11, T: 100})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "vs k (t=100)\tk=%d\t%s\t%s\t%s\n", k, ms(stats.GenTime), ms(stats.IOTime), ms(stats.GenTime+stats.IOTime))
	}
	for _, mult := range []int{1, 2, 4, 8} {
		cm := e.synWeb(mult, 64000, 1)
		_, stats, err := e.buildIndex(fmt.Sprintf("f2il-m%d", mult), cm, index.BuildOptions{K: 1, Seed: 11, T: 100})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "vs size (k=1,t=100)\t%dx\t%s\t%s\t%s\n", mult, ms(stats.GenTime), ms(stats.IOTime), ms(stats.GenTime+stats.IOTime))
	}
	return w.Flush()
}
