package experiments

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func validReport() *BenchReport {
	return &BenchReport{
		GitSHA:    "deadbeef",
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		GoVersion: "go1.22",
		Scale:     1,
		Results: []BenchResult{{
			Name: "query/theta=0.8", N: 100, NsPerOp: 12345.6, BytesPerOp: 64, AllocsPerOp: 2,
			Stages: &BenchStageSplit{SketchNS: 1000, GatherNS: 5000},
		}},
	}
}

// TestBenchReportRoundTrip: a written report validates, so the CI smoke
// job's write-then-check sequence is self-consistent.
func TestBenchReportRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH.json")
	if err := WriteBenchReport(path, validReport()); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateBenchReport(data); err != nil {
		t.Fatalf("round-tripped report invalid: %v", err)
	}
}

func TestBenchReportValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*BenchReport)
	}{
		{"missing_sha", func(r *BenchReport) { r.GitSHA = "" }},
		{"bad_timestamp", func(r *BenchReport) { r.Timestamp = "yesterday" }},
		{"no_results", func(r *BenchReport) { r.Results = nil }},
		{"unnamed_result", func(r *BenchReport) { r.Results[0].Name = "" }},
		{"zero_ns", func(r *BenchReport) { r.Results[0].NsPerOp = 0 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := validReport()
			tc.mutate(r)
			path := filepath.Join(t.TempDir(), "BENCH.json")
			if err := WriteBenchReport(path, r); err != nil {
				t.Fatal(err)
			}
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := ValidateBenchReport(data); err == nil {
				t.Errorf("%s: report validated, want error", tc.name)
			}
		})
	}
	if err := ValidateBenchReport([]byte("not json")); err == nil {
		t.Error("malformed JSON validated")
	}
}
