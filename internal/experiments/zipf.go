package experiments

import (
	"fmt"
	"sort"

	"ndss/internal/index"
)

// The paper's prefix-filtering design (§3.5) rests on the claim that
// inverted-list lengths follow Zipf's law — a few lists hold most
// postings. This extra experiment measures the actual list-length
// distribution of a built index.

func init() {
	register("zipf", "Extra: inverted-list length distribution (the Zipf skew prefix filtering exploits)", zipfExperiment)
}

func zipfExperiment(e *Env) error {
	e.printf("## Inverted-list length distribution (k=1, t=25)\n")
	e.printf("the head's share motivates deferring long lists at query time\n\n")
	c := e.synWeb(2, 2000, 1) // small vocab: pronounced head
	ix, _, err := e.buildIndex("zipf", c, index.BuildOptions{K: 1, Seed: 3, T: 25})
	if err != nil {
		return err
	}
	lengths := ix.ListLengths(0)
	sort.Sort(sort.Reverse(sort.IntSlice(lengths)))
	var total int64
	for _, n := range lengths {
		total += int64(n)
	}
	w := e.table()
	fmt.Fprintln(w, "head fraction of lists\tshare of postings\tcutoff length")
	for _, frac := range []float64{0.01, 0.05, 0.10, 0.20, 0.50} {
		head := int(float64(len(lengths)) * frac)
		if head < 1 {
			head = 1
		}
		var headSum int64
		for _, n := range lengths[:head] {
			headSum += int64(n)
		}
		fmt.Fprintf(w, "%.0f%%\t%.1f%%\t%d\n", frac*100, 100*float64(headSum)/float64(total), lengths[head-1])
	}
	if err := w.Flush(); err != nil {
		return err
	}
	e.printf("\nlists: %d, postings: %d, longest list: %d, median: %d\n",
		len(lengths), total, lengths[0], lengths[len(lengths)/2])
	// Zipf check: the top list should hold a multiple of the median's
	// share.
	ratio := float64(lengths[0]) / float64(lengths[len(lengths)/2]+1)
	e.printf("head/median ratio: %.1f (Zipf-skewed when >> 1)\n", ratio)
	return nil
}
