package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// testEnv returns an Env writing into a buffer, with tiny corpora (the
// synWeb/synPile sizes already scale from Scale=1; tests shrink further
// by overriding the corpus cache).
func testEnv(t *testing.T) (*Env, *bytes.Buffer) {
	t.Helper()
	var buf bytes.Buffer
	e := NewEnv(t.TempDir(), 1, &buf)
	t.Cleanup(e.Close)
	return e, &buf
}

func TestRegistryComplete(t *testing.T) {
	// Every experiment from DESIGN.md's per-experiment index must be
	// registered.
	want := []string{
		"fig2ab", "fig2cd", "fig2eh", "fig2il",
		"fig3ab", "fig3c", "fig3d", "fig3ef", "fig3gh",
		"fig4ac", "fig4bd", "table1",
		"th1", "ab1", "ab2", "ab3", "zipf",
	}
	for _, id := range want {
		if _, ok := Find(id); !ok {
			t.Errorf("experiment %s not registered", id)
		}
	}
	if len(All()) != len(want) {
		t.Errorf("registry holds %d experiments, want %d", len(All()), len(want))
	}
	// All() must be sorted and stable.
	ids := All()
	for i := 1; i < len(ids); i++ {
		if ids[i-1].ID >= ids[i].ID {
			t.Errorf("All() not sorted at %d: %s >= %s", i, ids[i-1].ID, ids[i].ID)
		}
	}
	if _, ok := Find("nope"); ok {
		t.Error("Find should miss unknown ids")
	}
}

func TestTheorem1Experiment(t *testing.T) {
	e, buf := testEnv(t)
	ex, _ := Find("th1")
	if err := ex.Run(e); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Theorem 1") || !strings.Contains(out, "rel.err") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}

func TestAb3Experiment(t *testing.T) {
	if testing.Short() {
		t.Skip("brute force baseline is slow")
	}
	e, buf := testEnv(t)
	ex, _ := Find("ab3")
	if err := ex.Run(e); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Our index must report perfect recall against the Def. 2 truth.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "compact-window index") && !strings.Contains(line, "1.000") {
			t.Fatalf("index recall below 1.0:\n%s", out)
		}
	}
}

// TestFastExperimentsRun executes every experiment that completes
// quickly at test scale, checking each produces its table without
// error. The heavyweight ones (fig3c, fig3ef, fig4*, table1) are
// covered by cmd/ndss-bench runs.
func TestFastExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke tests are not short")
	}
	e, buf := testEnv(t)
	for _, id := range []string{"fig2ab", "fig2cd", "fig2eh", "fig2il", "zipf"} {
		ex, ok := Find(id)
		if !ok {
			t.Fatalf("experiment %s missing", id)
		}
		before := buf.Len()
		if err := ex.Run(e); err != nil {
			t.Fatalf("%s failed: %v", id, err)
		}
		if buf.Len() <= before {
			t.Fatalf("%s produced no output", id)
		}
	}
	out := buf.String()
	for _, marker := range []string{"Fig 2(a-b)", "Fig 2(c-d)", "index size", "index time", "Zipf"} {
		if !strings.Contains(strings.ToLower(out), strings.ToLower(marker)) {
			t.Errorf("output missing %q", marker)
		}
	}
}

// TestFig3Experiment runs one query-path experiment end to end.
func TestFig3Experiment(t *testing.T) {
	if testing.Short() {
		t.Skip("query experiment is not short")
	}
	e, buf := testEnv(t)
	ex, _ := Find("fig3gh")
	if err := ex.Run(e); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "total ms") {
		t.Fatalf("missing latency table:\n%s", buf.String())
	}
}

func TestQueryWorkloadShape(t *testing.T) {
	e, _ := testEnv(t)
	c := e.synWeb(1, 32000, 1)
	qs := queryWorkload(c, 10, 64, 32000, 0.1, 3)
	if len(qs) != 10 {
		t.Fatalf("got %d queries", len(qs))
	}
	for _, q := range qs {
		if len(q) != 64 {
			t.Fatalf("query length %d", len(q))
		}
	}
}

func TestCorpusCaching(t *testing.T) {
	e, _ := testEnv(t)
	a := e.synWeb(1, 32000, 1)
	b := e.synWeb(1, 32000, 1)
	if a != b {
		t.Fatal("corpus not cached")
	}
	if e.synWeb(1, 64000, 1) == a {
		t.Fatal("different vocab returned same corpus")
	}
}
