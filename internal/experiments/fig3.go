package experiments

import (
	"fmt"
	"os"
	"path/filepath"

	"ndss/internal/corpus"
	"ndss/internal/index"
	"ndss/internal/search"
)

// Figure 3 — query processing (paper §4.2): latency (I/O + CPU split)
// and result counts under varying k, theta, corpus size, prefix length
// and length threshold.

func init() {
	register("fig3ab", "Fig 3(a-b): query latency and #near-duplicates vs k and theta (SynWeb)", fig3ab)
	register("fig3c", "Fig 3(c): query latency vs corpus size", fig3c)
	register("fig3d", "Fig 3(d): latency vs prefix length (share of long lists)", fig3d)
	register("fig3ef", "Fig 3(e-f): latency and #near-duplicates vs k and theta (SynPile, external build)", fig3ef)
	register("fig3gh", "Fig 3(g-h): latency vs theta and vs length threshold t", fig3gh)
}

const fig3QueryLen = 64

func fig3ab(e *Env) error {
	e.printf("## Fig 3(a-b): query latency split and near-duplicates found, SynWeb, t=25\n")
	e.printf("100 queries (planted near-duplicates + random), prefix filtering on\n\n")
	c := e.synWeb(1, 32000, 1)
	queries := queryWorkload(c, 100, fig3QueryLen, 32000, 0.1, 5)
	w := e.table()
	fmt.Fprintln(w, "k\ttheta\tio ms\tcpu ms\ttotal ms\tavg #near-dups")
	for _, k := range []int{16, 32, 64} {
		ix, _, err := e.buildIndex(fmt.Sprintf("f3ab-k%d", k), c, index.BuildOptions{K: k, Seed: 3, T: 25})
		if err != nil {
			return err
		}
		s := search.New(ix, c)
		for _, theta := range []float64{0.7, 0.8, 0.9, 1.0} {
			res, err := runQueries(s, queries, search.Options{Theta: theta, PrefixFilter: true})
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%d\t%.1f\t%s\t%s\t%s\t%.2f\n",
				k, theta, ms(res.AvgIO), ms(res.AvgCPU), ms(res.AvgTotal), res.AvgMatches)
		}
	}
	return w.Flush()
}

func fig3c(e *Env) error {
	e.printf("## Fig 3(c): query latency vs corpus size (k=32, t=25, theta=0.8)\n\n")
	w := e.table()
	fmt.Fprintln(w, "size\ttokens\tio ms\tcpu ms\ttotal ms")
	for _, mult := range []int{1, 2, 4, 8} {
		c := e.synWeb(mult, 32000, 1)
		ix, _, err := e.buildIndex(fmt.Sprintf("f3c-m%d", mult), c, index.BuildOptions{K: 32, Seed: 3, T: 25})
		if err != nil {
			return err
		}
		s := search.New(ix, c)
		queries := queryWorkload(c, 50, fig3QueryLen, 32000, 0.1, 6)
		res, err := runQueries(s, queries, search.Options{Theta: 0.8, PrefixFilter: true})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%dx\t%d\t%s\t%s\t%s\n", mult, c.TotalTokens(), ms(res.AvgIO), ms(res.AvgCPU), ms(res.AvgTotal))
	}
	return w.Flush()
}

func fig3d(e *Env) error {
	e.printf("## Fig 3(d): latency vs prefix length (fraction of lists deferred as long)\n")
	e.printf("k=32, t=25, theta=0.8, small vocab (pronounced Zipf head => genuinely long lists)\n")
	e.printf("deferring more lists trades full-list I/O for per-candidate probes\n\n")
	// A small vocabulary concentrates postings into a heavy Zipf head,
	// reproducing the long-list skew the prefix filter targets.
	c := e.synWeb(2, 2000, 1)
	ix, _, err := e.buildIndex("f3d", c, index.BuildOptions{K: 32, Seed: 3, T: 25})
	if err != nil {
		return err
	}
	s := search.New(ix, c)
	queries := queryWorkload(c, 100, fig3QueryLen, 2000, 0.1, 7)
	w := e.table()
	fmt.Fprintln(w, "deferred\tcutoff(list len)\tio ms\tcpu ms\ttotal ms")
	for _, frac := range []float64{0.05, 0.10, 0.15, 0.20} {
		cutoff := search.CutoffForTopFraction(ix, frac)
		res, err := runQueries(s, queries, search.Options{Theta: 0.8, PrefixFilter: true, LongListThreshold: cutoff})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%.0f%%\t%d\t%s\t%s\t%s\n", frac*100, cutoff, ms(res.AvgIO), ms(res.AvgCPU), ms(res.AvgTotal))
	}
	return w.Flush()
}

func fig3ef(e *Env) error {
	e.printf("## Fig 3(e-f): query latency split and near-duplicates found, SynPile, t=25\n")
	e.printf("index built with the out-of-core hash-aggregation builder\n\n")
	c := e.synPile(1, 9)
	// Write the corpus to disk and build externally, as the Pile-scale
	// path requires.
	dir := filepath.Join(e.WorkDir, "f3ef")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	corpusPath := filepath.Join(dir, "synpile.tok")
	if _, err := os.Stat(corpusPath); err != nil {
		if err := corpus.WriteFile(c, corpusPath); err != nil {
			return err
		}
	}
	queries := queryWorkload(c, 60, fig3QueryLen, 50257, 0.1, 8)
	w := e.table()
	fmt.Fprintln(w, "k\ttheta\tio ms\tcpu ms\ttotal ms\tavg #near-dups")
	for _, k := range []int{16, 32} {
		idxDir := filepath.Join(dir, fmt.Sprintf("idx-k%d", k))
		if _, err := os.Stat(filepath.Join(idxDir, "index.meta")); err != nil {
			if err := os.MkdirAll(idxDir, 0o755); err != nil {
				return err
			}
			r, err := corpus.OpenReader(corpusPath)
			if err != nil {
				return err
			}
			_, err = index.BuildExternal(r, idxDir, index.BuildOptions{
				K: k, Seed: 3, T: 25, MemoryBudget: 64 << 20,
			})
			r.Close()
			if err != nil {
				return err
			}
		}
		ix, err := index.Open(idxDir)
		if err != nil {
			return err
		}
		s := search.New(ix, c)
		for _, theta := range []float64{0.7, 0.8, 0.9, 1.0} {
			res, err := runQueries(s, queries, search.Options{Theta: theta, PrefixFilter: true})
			if err != nil {
				ix.Close()
				return err
			}
			fmt.Fprintf(w, "%d\t%.1f\t%s\t%s\t%s\t%.2f\n",
				k, theta, ms(res.AvgIO), ms(res.AvgCPU), ms(res.AvgTotal), res.AvgMatches)
		}
		ix.Close()
	}
	return w.Flush()
}

func fig3gh(e *Env) error {
	e.printf("## Fig 3(g-h): latency vs theta and vs length threshold t (k=32)\n\n")
	c := e.synWeb(1, 32000, 1)
	queries := queryWorkload(c, 100, 128, 32000, 0.1, 9)
	w := e.table()
	fmt.Fprintln(w, "t\ttheta\tio ms\tcpu ms\ttotal ms")
	for _, t := range []int{25, 50, 100} {
		ix, _, err := e.buildIndex(fmt.Sprintf("f3gh-t%d", t), c, index.BuildOptions{K: 32, Seed: 3, T: t})
		if err != nil {
			return err
		}
		s := search.New(ix, c)
		for _, theta := range []float64{0.7, 0.8, 0.9, 1.0} {
			res, err := runQueries(s, queries, search.Options{Theta: theta, PrefixFilter: true})
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%d\t%.1f\t%s\t%s\t%s\n", t, theta, ms(res.AvgIO), ms(res.AvgCPU), ms(res.AvgTotal))
		}
	}
	return w.Flush()
}
