package experiments

import (
	"fmt"

	"ndss/internal/index"
	"ndss/internal/lm"
	"ndss/internal/memorize"
	"ndss/internal/search"
)

// Figure 4 and Table 1 — language model memorization (paper §5): the
// fraction of model-generated query sequences that have near-duplicates
// in the training corpus, across model capacities, similarity thresholds
// and sliding-window widths.
//
// The four model capacities stand in for the paper's GPT-2 small/medium
// and GPT-Neo 1.3B/2.7B checkpoints (see DESIGN.md).

func init() {
	register("fig4ac", "Fig 4(a,c): memorized fraction vs theta for four model capacities (x=32, t=25, k=32)", fig4ac)
	register("fig4bd", "Fig 4(b,d): memorized fraction vs sliding-window width x (theta=0.8)", fig4bd)
	register("table1", "Table 1: example generated sequences and their near-duplicates", table1)
}

// lmVariants mirrors the paper's four model sizes with growing n-gram
// capacity.
var lmVariants = []struct {
	name        string
	order       int
	maxContexts int
}{
	{"gpt2-small~(117M)", 3, 30000},
	{"gpt2-medium~(345M)", 3, 0},
	{"gptneo~(1.3B)", 4, 0},
	{"gptneo~(2.7B)", 5, 0},
}

func fig4Fixture(e *Env) (*search.Searcher, []*lm.Model, error) {
	c := e.synWeb(1, 32000, 1)
	ix, _, err := e.buildIndex("f3ab-k32", c, index.BuildOptions{K: 32, Seed: 3, T: 25})
	if err != nil {
		return nil, nil, err
	}
	s := search.New(ix, c)
	models := make([]*lm.Model, len(lmVariants))
	for i, v := range lmVariants {
		m, err := lm.Train(c, lm.Config{Order: v.order, MaxContexts: v.maxContexts})
		if err != nil {
			return nil, nil, err
		}
		models[i] = m
	}
	return s, models, nil
}

func fig4ac(e *Env) error {
	e.printf("## Fig 4(a,c): %% of generated sequences with near-duplicates in the training corpus\n")
	e.printf("x=32, t=25, k=32, top-50 sampling, unprompted\n\n")
	s, models, err := fig4Fixture(e)
	if err != nil {
		return err
	}
	w := e.table()
	fmt.Fprintln(w, "model\tcontexts\ttheta=1.0\ttheta=0.9\ttheta=0.8")
	for i, v := range lmVariants {
		queries, err := memorize.GenerateQueries(models[i], memorize.GenConfig{
			NumTexts:    8 * e.Scale,
			TextLength:  512,
			QueryLength: 32,
			Sampler:     lm.TopK{K: 50},
			Seed:        21,
		})
		if err != nil {
			return err
		}
		row := fmt.Sprintf("%s\t%d", v.name, models[i].NumContexts())
		for _, theta := range []float64{1.0, 0.9, 0.8} {
			res, err := memorize.Evaluate(s, queries, memorize.EvalConfig{
				Options: search.Options{Theta: theta, PrefixFilter: true},
			})
			if err != nil {
				return err
			}
			row += fmt.Sprintf("\t%.1f%%", res.Ratio*100)
		}
		fmt.Fprintln(w, row)
	}
	return w.Flush()
}

func fig4bd(e *Env) error {
	e.printf("## Fig 4(b,d): %% memorized vs sliding-window width x (theta=0.8, t=25, k=32)\n\n")
	s, models, err := fig4Fixture(e)
	if err != nil {
		return err
	}
	w := e.table()
	fmt.Fprintln(w, "model\tx=32\tx=64\tx=128")
	for i, v := range lmVariants {
		row := v.name
		for _, x := range []int{32, 64, 128} {
			queries, err := memorize.GenerateQueries(models[i], memorize.GenConfig{
				NumTexts:    8 * e.Scale,
				TextLength:  512,
				QueryLength: x,
				Sampler:     lm.TopK{K: 50},
				Seed:        22,
			})
			if err != nil {
				return err
			}
			res, err := memorize.Evaluate(s, queries, memorize.EvalConfig{
				Options: search.Options{Theta: 0.8, PrefixFilter: true},
			})
			if err != nil {
				return err
			}
			row += fmt.Sprintf("\t%.1f%%", res.Ratio*100)
		}
		fmt.Fprintln(w, row)
	}
	return w.Flush()
}

func table1(e *Env) error {
	e.printf("## Table 1: generated sequences and near-duplicates found in the corpus\n")
	e.printf("(token-id snippets; the corpus is synthetic so no natural text exists)\n\n")
	s, models, err := fig4Fixture(e)
	if err != nil {
		return err
	}
	c := e.synWeb(1, 32000, 1)
	queries, err := memorize.GenerateQueries(models[len(models)-1], memorize.GenConfig{
		NumTexts:    8 * e.Scale,
		TextLength:  512,
		QueryLength: 32,
		Sampler:     lm.TopK{K: 50},
		Seed:        23,
	})
	if err != nil {
		return err
	}
	res, err := memorize.Evaluate(s, queries, memorize.EvalConfig{
		Options:     search.Options{Theta: 0.8, PrefixFilter: true, Verify: true},
		MaxExamples: 3,
	})
	if err != nil {
		return err
	}
	if len(res.Examples) == 0 {
		e.printf("no memorized sequences found at this scale\n")
		return nil
	}
	for i, ex := range res.Examples {
		m := ex.Match
		text := c.Text(m.TextID)
		end := m.End
		if end > m.Start+31 {
			end = m.Start + 31
		}
		e.printf("example %d:\n", i+1)
		e.printf("  generated : %v\n", ex.Query[:min(16, len(ex.Query))])
		e.printf("  corpus    : %v (text %d, span [%d, %d])\n",
			text[m.Start : end+1][:min(16, int(end-m.Start+1))], m.TextID, m.Start, m.End)
		e.printf("  est. Jaccard %.3f, exact span Jaccard %.3f\n\n", m.EstJaccard, m.Jaccard)
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
