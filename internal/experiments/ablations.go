package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"ndss/internal/baseline"
	"ndss/internal/corpus"
	"ndss/internal/hash"
	"ndss/internal/index"
	"ndss/internal/rmq"
	"ndss/internal/search"
	"ndss/internal/window"
)

// Ablations and analysis validations called out in DESIGN.md.

func init() {
	register("th1", "Theorem 1: measured window count vs 2(n+1)/(t+1)-1", th1)
	register("ab1", "Ablation: RMQ structure choice in window generation (segment tree = ALIGN)", ab1)
	register("ab2", "Ablation: prefix filtering and zone maps on/off", ab2)
	register("ab3", "Baselines: index search vs brute force vs seed-and-extend (time + recall)", ab3)
}

func th1(e *Env) error {
	e.printf("## Theorem 1: compact windows per text, measured vs expected\n")
	e.printf("random distinct-token texts, 100 trials each\n\n")
	w := e.table()
	fmt.Fprintln(w, "n\tt\tmeasured(avg)\texpected\trel.err")
	rng := rand.New(rand.NewSource(1))
	for _, cfg := range []struct{ n, t int }{
		{1000, 25}, {1000, 50}, {10000, 50}, {10000, 100}, {100000, 100}, {100000, 200},
	} {
		vals := make([]uint64, cfg.n)
		total := 0
		const trials = 100
		for tr := 0; tr < trials; tr++ {
			for i := range vals {
				vals[i] = rng.Uint64()
			}
			total += len(window.GenerateLinear(vals, cfg.t, nil))
		}
		mean := float64(total) / trials
		exp := window.ExpectedCount(cfg.n, cfg.t)
		fmt.Fprintf(w, "%d\t%d\t%.2f\t%.2f\t%.3f%%\n", cfg.n, cfg.t, mean, exp, 100*(mean-exp)/exp)
	}
	return w.Flush()
}

func ab1(e *Env) error {
	e.printf("## Ablation: window-generation algorithm / RMQ structure\n")
	e.printf("one pass over SynWeb 1x token hashes, t=50\n\n")
	c := e.synWeb(1, 32000, 1)
	fam := hash.MustNewFamily(1, 1)
	gens := []struct {
		name string
		gen  func(vals []uint64, t int, dst []window.Window) []window.Window
	}{
		{"stack (ours, O(n))", window.GenerateLinear},
		{"rmq linear (paper, O(n))", func(v []uint64, t int, dst []window.Window) []window.Window {
			return window.Generate(v, t, func(x []uint64) rmq.RMQ { return rmq.NewLinear(x) }, dst)
		}},
		{"rmq sparse (O(n log n) space)", func(v []uint64, t int, dst []window.Window) []window.Window {
			return window.Generate(v, t, func(x []uint64) rmq.RMQ { return rmq.NewSparse(x) }, dst)
		}},
		{"segment tree (ALIGN, O(n log n))", func(v []uint64, t int, dst []window.Window) []window.Window {
			return window.Generate(v, t, func(x []uint64) rmq.RMQ { return rmq.NewSegmentTree(x) }, dst)
		}},
	}
	w := e.table()
	fmt.Fprintln(w, "generator\twindows\ttime ms")
	for _, g := range gens {
		var vals []uint64
		var ws []window.Window
		start := time.Now()
		count := 0
		for id := 0; id < c.NumTexts(); id++ {
			vals = window.Hashes(c.Text(uint32(id)), fam.Func(0), vals)
			ws = g.gen(vals, 50, ws[:0])
			count += len(ws)
		}
		fmt.Fprintf(w, "%s\t%d\t%s\n", g.name, count, ms(time.Since(start)))
	}
	return w.Flush()
}

func ab2(e *Env) error {
	e.printf("## Ablation: prefix filtering on/off (k=32, t=25, theta=0.8)\n\n")
	c := e.synWeb(1, 32000, 1)
	ix, _, err := e.buildIndex("f3ab-k32", c, index.BuildOptions{K: 32, Seed: 3, T: 25})
	if err != nil {
		return err
	}
	s := search.New(ix, c)
	queries := queryWorkload(c, 100, fig3QueryLen, 32000, 0.1, 13)
	w := e.table()
	fmt.Fprintln(w, "variant\tio ms\tcpu ms\ttotal ms\tavg #near-dups")
	for _, v := range []struct {
		name string
		opts search.Options
	}{
		{"no prefix filter (all lists read fully)", search.Options{Theta: 0.8}},
		{"prefix filter, default cutoff (top 10%)", search.Options{Theta: 0.8, PrefixFilter: true}},
		{"prefix filter, aggressive cutoff (top 20%)", search.Options{Theta: 0.8, PrefixFilter: true,
			LongListThreshold: search.CutoffForTopFraction(ix, 0.20)}},
	} {
		res, err := runQueries(s, queries, v.opts)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%.2f\n", v.name, ms(res.AvgIO), ms(res.AvgCPU), ms(res.AvgTotal), res.AvgMatches)
	}
	return w.Flush()
}

func ab3(e *Env) error {
	e.printf("## Baselines: ours vs brute-force scan vs seed-and-extend\n")
	e.printf("small corpus (brute force is quadratic), theta=0.8, t=10, 20 queries\n\n")
	// A deliberately small corpus so the O(k n^2) brute force finishes.
	c := corpus.MustSynthesize(corpus.SynthConfig{
		NumTexts: 100, MinLength: 50, MaxLength: 150, VocabSize: 2000,
		ZipfS: 1.1, Seed: 19, DupRate: 0.4, DupSnippetLen: 32, DupMutateProb: 0.05,
	})
	const k, seed, t = 32, 3, 10
	ix, _, err := e.buildIndex("ab3", c, index.BuildOptions{K: k, Seed: seed, T: t})
	if err != nil {
		return err
	}
	s := search.New(ix, c)
	fam := hash.MustNewFamily(k, seed)
	se := baseline.NewSeedExtend(c, 8)
	rng := rand.New(rand.NewSource(29))
	var queries [][]uint32
	for len(queries) < 20 {
		if q, _, _, ok := corpus.PlantQuery(c, 24, 0.15, 2000, rng); ok {
			queries = append(queries, q)
		}
	}

	type row struct {
		name    string
		elapsed time.Duration
		found   int
		recall  float64
	}
	var rows []row

	// Ground truth + brute force timing (they are the same scan).
	truth := make([]map[uint32]bool, len(queries)) // texts with a hit
	start := time.Now()
	truthTotal := 0
	for i, q := range queries {
		spans := baseline.MinHashScan(c, fam, q, 0.8, t)
		truth[i] = map[uint32]bool{}
		for _, sp := range spans {
			truth[i][sp.TextID] = true
		}
		truthTotal += len(spans)
	}
	rows = append(rows, row{"brute-force min-hash scan (exact)", time.Since(start), truthTotal, 1})

	// Our index search.
	start = time.Now()
	found := 0
	hit, want := 0, 0
	for i, q := range queries {
		msr, _, err := s.Search(q, search.Options{Theta: 0.8, PrefixFilter: true})
		if err != nil {
			return err
		}
		found += len(msr)
		got := map[uint32]bool{}
		for _, m := range msr {
			got[m.TextID] = true
		}
		for id := range truth[i] {
			want++
			if got[id] {
				hit++
			}
		}
	}
	rows = append(rows, row{"compact-window index (ours)", time.Since(start), found, recall(hit, want)})

	// Seed-and-extend heuristic.
	start = time.Now()
	found, hit, want = 0, 0, 0
	for i, q := range queries {
		spans := se.Search(q, 0.8, t)
		found += len(spans)
		got := map[uint32]bool{}
		for _, sp := range spans {
			got[sp.TextID] = true
		}
		for id := range truth[i] {
			want++
			if got[id] {
				hit++
			}
		}
	}
	rows = append(rows, row{"seed-and-extend (no guarantee)", time.Since(start), found, recall(hit, want)})

	w := e.table()
	fmt.Fprintln(w, "method\ttime ms\tspans found\trecall vs Def.2 truth")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s\t%d\t%.3f\n", r.name, ms(r.elapsed), r.found, r.recall)
	}
	return w.Flush()
}

func recall(hit, want int) float64 {
	if want == 0 {
		return 1
	}
	return float64(hit) / float64(want)
}
