package experiments

// Machine-readable benchmark reporting: RunBenchSuite drives the query
// benchmark (the testing.B counterpart of BenchmarkFig3_QueryVsTheta)
// programmatically via testing.Benchmark and emits a BENCH.json report
// with ns/op, B/op, per-stage latency splits, the git revision, and a
// timestamp — the artifact the CI bench-smoke job uploads so query-path
// performance is tracked per commit. The suite includes a traced
// variant of the theta=0.8 point so the overhead of span collection on
// the default path is itself a recorded series.

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"testing"
	"time"

	"ndss/internal/corpus"
	"ndss/internal/index"
	"ndss/internal/search"
)

// BenchStageSplit is the per-stage share of query time in a report,
// averaged over the sampled workload (nanoseconds per query).
type BenchStageSplit struct {
	SketchNS int64 `json:"sketch_ns"`
	PlanNS   int64 `json:"plan_ns"`
	GatherNS int64 `json:"gather_ns"`
	CountNS  int64 `json:"count_ns"`
	MergeNS  int64 `json:"merge_ns"`
	VerifyNS int64 `json:"verify_ns"`
}

// BenchResult is one benchmark series point.
type BenchResult struct {
	Name         string           `json:"name"`
	N            int              `json:"n"`
	NsPerOp      float64          `json:"ns_per_op"`
	BytesPerOp   int64            `json:"bytes_per_op"`
	AllocsPerOp  int64            `json:"allocs_per_op"`
	MatchesPerOp float64          `json:"matches_per_op"`
	Stages       *BenchStageSplit `json:"stages,omitempty"`
}

// BenchReport is the BENCH.json schema.
type BenchReport struct {
	GitSHA    string        `json:"git_sha"`
	Timestamp string        `json:"timestamp"` // RFC3339
	GoVersion string        `json:"go_version"`
	Scale     int           `json:"scale"`
	Results   []BenchResult `json:"results"`
}

// GitSHA resolves the commit the report describes: the working tree's
// HEAD, the GITHUB_SHA CI variable, or "unknown".
func GitSHA() string {
	if out, err := exec.Command("git", "rev-parse", "HEAD").Output(); err == nil {
		if sha := strings.TrimSpace(string(out)); sha != "" {
			return sha
		}
	}
	if sha := os.Getenv("GITHUB_SHA"); sha != "" {
		return sha
	}
	return "unknown"
}

// benchPoint is one (name, options) cell of the suite.
type benchPoint struct {
	name string
	opts search.Options
}

// RunBenchSuite builds the benchmark fixture (the same corpus/index
// shape as BenchmarkFig3_QueryVsTheta) and measures the query path
// across thresholds, plus a traced theta=0.8 variant that exposes the
// cost of detailed span collection.
func (e *Env) RunBenchSuite() (*BenchReport, error) {
	c := corpus.MustSynthesize(corpus.SynthConfig{
		NumTexts: 300 * e.Scale, MinLength: 100, MaxLength: 700,
		VocabSize: 32000, ZipfS: 1.07, Seed: 1,
		DupRate: 0.15, DupSnippetLen: 64, DupMutateProb: 0.05,
	})
	ix, _, err := e.buildIndex("benchjson", c, index.BuildOptions{K: 32, Seed: 3, T: 25})
	if err != nil {
		return nil, err
	}
	s := search.New(ix, c)
	queries := queryWorkload(c, 32, 64, 32000, 0.1, 5)

	points := []benchPoint{
		{"query/theta=0.7", search.Options{Theta: 0.7, PrefixFilter: true}},
		{"query/theta=0.8", search.Options{Theta: 0.8, PrefixFilter: true}},
		{"query/theta=0.9", search.Options{Theta: 0.9, PrefixFilter: true}},
		{"query/theta=1.0", search.Options{Theta: 1.0, PrefixFilter: true}},
		{"query/theta=0.8,traced", search.Options{Theta: 0.8, PrefixFilter: true, Trace: true}},
	}

	report := &BenchReport{
		GitSHA:    GitSHA(),
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		Scale:     e.Scale,
	}
	for _, pt := range points {
		opts := pt.opts
		var matches int64
		var ops int64
		br := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			matches, ops = 0, 0
			for i := 0; i < b.N; i++ {
				ms, _, err := s.Search(queries[i%len(queries)], opts)
				if err != nil {
					b.Fatal(err)
				}
				matches += int64(len(ms))
				ops++
			}
		})
		res := BenchResult{
			Name:        pt.name,
			N:           br.N,
			NsPerOp:     float64(br.T.Nanoseconds()) / float64(br.N),
			BytesPerOp:  br.AllocedBytesPerOp(),
			AllocsPerOp: br.AllocsPerOp(),
		}
		if ops > 0 {
			res.MatchesPerOp = float64(matches) / float64(ops)
		}
		// The stage split comes from a sample pass over the workload
		// (separate from the timed loop, so it never perturbs ns/op).
		var agg search.StageTimes
		for _, q := range queries {
			_, st, err := s.Search(q, opts)
			if err != nil {
				return nil, err
			}
			agg = agg.Add(st.StageTimes)
		}
		n := int64(len(queries))
		res.Stages = &BenchStageSplit{
			SketchNS: int64(agg.Sketch) / n, PlanNS: int64(agg.Plan) / n,
			GatherNS: int64(agg.Gather) / n, CountNS: int64(agg.Count) / n,
			MergeNS: int64(agg.Merge) / n, VerifyNS: int64(agg.Verify) / n,
		}
		report.Results = append(report.Results, res)
		e.printf("%-24s %10.0f ns/op %8d B/op %6d allocs/op\n",
			pt.name, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp)
	}
	return report, nil
}

// WriteBenchReport writes the report as indented JSON.
func WriteBenchReport(path string, r *BenchReport) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ValidateBenchReport checks that data conforms to the BENCH.json
// schema: the CI smoke job runs it against the artifact it uploads.
func ValidateBenchReport(data []byte) error {
	var r BenchReport
	if err := json.Unmarshal(data, &r); err != nil {
		return fmt.Errorf("bench report: %w", err)
	}
	if r.GitSHA == "" {
		return fmt.Errorf("bench report: missing git_sha")
	}
	if _, err := time.Parse(time.RFC3339, r.Timestamp); err != nil {
		return fmt.Errorf("bench report: bad timestamp %q: %w", r.Timestamp, err)
	}
	if len(r.Results) == 0 {
		return fmt.Errorf("bench report: no results")
	}
	for i, res := range r.Results {
		if res.Name == "" {
			return fmt.Errorf("bench report: result %d has no name", i)
		}
		if res.N <= 0 || res.NsPerOp <= 0 {
			return fmt.Errorf("bench report: result %q has non-positive n/ns_per_op", res.Name)
		}
	}
	return nil
}
