// Package experiments regenerates every table and figure of the paper's
// evaluation (§4 and §5) plus the ablations called out in DESIGN.md.
// Each experiment is a named runner that prints the same rows/series the
// paper reports; cmd/ndss-bench drives them.
//
// The corpora are synthetic stand-ins (see DESIGN.md's substitution
// table): "SynWeb" mirrors OpenWebText's role (in-memory index path) and
// "SynPile" mirrors the Pile's (out-of-core index path). Sizes are
// scaled to a single small machine; the Scale knob grows them toward the
// paper's shape.
package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"text/tabwriter"
	"time"

	"ndss/internal/corpus"
	"ndss/internal/index"
	"ndss/internal/search"
)

// Env carries shared configuration and caches across experiment runs.
type Env struct {
	// WorkDir holds index directories and corpus files.
	WorkDir string
	// Scale multiplies corpus sizes; 1 is the quick default.
	Scale int
	// Out receives the experiment tables.
	Out io.Writer

	corpora map[string]*corpus.Corpus
	indexes map[string]builtIndex
}

// builtIndex pairs a cached index with the stats from its build.
type builtIndex struct {
	ix    *index.Index
	stats *index.BuildStats
}

// NewEnv creates an environment rooted at workDir.
func NewEnv(workDir string, scale int, out io.Writer) *Env {
	if scale < 1 {
		scale = 1
	}
	return &Env{
		WorkDir: workDir,
		Scale:   scale,
		Out:     out,
		corpora: make(map[string]*corpus.Corpus),
		indexes: make(map[string]builtIndex),
	}
}

// Close releases cached indexes.
func (e *Env) Close() {
	for _, b := range e.indexes {
		b.ix.Close()
	}
	e.indexes = make(map[string]builtIndex)
}

func (e *Env) printf(format string, args ...any) {
	fmt.Fprintf(e.Out, format, args...)
}

// table starts a tab-aligned table.
func (e *Env) table() *tabwriter.Writer {
	return tabwriter.NewWriter(e.Out, 2, 4, 2, ' ', 0)
}

// synWeb returns (cached) the OpenWebText stand-in at a size multiple
// and vocabulary size.
func (e *Env) synWeb(mult, vocab int, seed int64) *corpus.Corpus {
	key := fmt.Sprintf("synweb-%d-%d-%d", mult, vocab, seed)
	if c, ok := e.corpora[key]; ok {
		return c
	}
	c := corpus.MustSynthesize(corpus.SynthConfig{
		NumTexts:      500 * mult * e.Scale,
		MinLength:     100,
		MaxLength:     700,
		VocabSize:     vocab,
		ZipfS:         1.07,
		Seed:          seed,
		DupRate:       0.15,
		DupSnippetLen: 64,
		DupMutateProb: 0.05,
	})
	e.corpora[key] = c
	return c
}

// synPile returns the Pile stand-in (larger texts, GPT-2 vocab size).
func (e *Env) synPile(mult int, seed int64) *corpus.Corpus {
	key := fmt.Sprintf("synpile-%d-%d", mult, seed)
	if c, ok := e.corpora[key]; ok {
		return c
	}
	c := corpus.MustSynthesize(corpus.SynthConfig{
		NumTexts:      300 * mult * e.Scale,
		MinLength:     200,
		MaxLength:     1200,
		VocabSize:     50257,
		ZipfS:         1.07,
		Seed:          seed,
		DupRate:       0.2,
		DupSnippetLen: 80,
		DupMutateProb: 0.05,
	})
	e.corpora[key] = c
	return c
}

// buildIndex builds (or returns cached) an index for a corpus under a
// parameter set and returns it with the stats from its (first) build.
func (e *Env) buildIndex(name string, c *corpus.Corpus, opts index.BuildOptions) (*index.Index, *index.BuildStats, error) {
	key := fmt.Sprintf("%s-k%d-t%d-s%d", name, opts.K, opts.T, opts.Seed)
	if b, ok := e.indexes[key]; ok {
		return b.ix, b.stats, nil
	}
	dir := filepath.Join(e.WorkDir, key)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	stats, err := index.Build(c, dir, opts)
	if err != nil {
		return nil, nil, err
	}
	ix, err := index.Open(dir)
	if err != nil {
		return nil, nil, err
	}
	e.indexes[key] = builtIndex{ix: ix, stats: stats}
	return ix, stats, nil
}

// queryWorkload derives numQueries query sequences of the given length
// from a corpus: planted near-duplicates (mutated corpus snippets, the
// analogue of LLM-generated text that echoes training data) mixed with
// fresh random-token queries.
func queryWorkload(c *corpus.Corpus, numQueries, length, vocab int, mutateProb float64, seed int64) [][]uint32 {
	rng := rand.New(rand.NewSource(seed))
	queries := make([][]uint32, 0, numQueries)
	for i := 0; i < numQueries; i++ {
		if i%2 == 0 {
			if q, _, _, ok := corpus.PlantQuery(c, length, mutateProb, vocab, rng); ok {
				queries = append(queries, q)
				continue
			}
		}
		q := make([]uint32, length)
		for j := range q {
			q[j] = uint32(rng.Intn(vocab))
		}
		queries = append(queries, q)
	}
	return queries
}

// queryResult aggregates a query batch.
type queryResult struct {
	AvgTotal   time.Duration
	AvgIO      time.Duration
	AvgCPU     time.Duration
	AvgMatches float64
}

// runQueries executes a batch and averages the latency split.
func runQueries(s *search.Searcher, queries [][]uint32, opts search.Options) (queryResult, error) {
	var res queryResult
	var total, io time.Duration
	var matches int
	for _, q := range queries {
		ms, st, err := s.Search(q, opts)
		if err != nil {
			return res, err
		}
		total += st.Total
		io += st.IOTime
		matches += len(ms)
	}
	n := time.Duration(len(queries))
	if n == 0 {
		return res, nil
	}
	res.AvgTotal = total / n
	res.AvgIO = io / n
	res.AvgCPU = res.AvgTotal - res.AvgIO
	res.AvgMatches = float64(matches) / float64(len(queries))
	return res, nil
}

// Experiment is one named runner.
type Experiment struct {
	ID   string
	Desc string
	Run  func(e *Env) error
}

// registry holds all experiments keyed by id.
var registry []Experiment

func register(id, desc string, run func(e *Env) error) {
	registry = append(registry, Experiment{ID: id, Desc: desc, Run: run})
}

// All returns every registered experiment, sorted by id.
func All() []Experiment {
	out := append([]Experiment{}, registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Find returns the experiment with the given id.
func Find(id string) (Experiment, bool) {
	for _, ex := range registry {
		if ex.ID == id {
			return ex, true
		}
	}
	return Experiment{}, false
}

// ms formats a duration in milliseconds with 3 decimals.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.3f", float64(d.Microseconds())/1000)
}
