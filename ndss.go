// Package ndss is a scalable near-duplicate sequence search library, a
// faithful reproduction of "Near-Duplicate Sequence Search at Scale for
// Large Language Model Memorization Evaluation" (SIGMOD 2023).
//
// Given a corpus of tokenized texts, ndss builds k inverted files of
// min-hash compact windows (one per hash function) so that, for any
// query sequence Q and Jaccard threshold θ, it can report every
// sequence T[i..j] of at least t tokens whose estimated Jaccard
// similarity with Q is at least θ — in time far below enumerating the
// O(n²) sequences of each text.
//
// Basic usage:
//
//	// Offline: build an index over a tokenized corpus.
//	texts := [][]uint32{ /* token ids */ }
//	stats, err := ndss.BuildIndex(texts, "idx", ndss.BuildOptions{
//		K: 32, Seed: 1, T: 25,
//	})
//
//	// Online: open and query.
//	db, err := ndss.Open("idx")
//	defer db.Close()
//	db.AttachTexts(texts) // optional, enables Verify
//	matches, qstats, err := db.Search(query, ndss.SearchOptions{
//		Theta: 0.8, PrefixFilter: true,
//	})
//
// Each Match is a merged span of overlapping qualifying sequences in one
// text, per the paper's reporting rule. See DESIGN.md for the system
// layout and EXPERIMENTS.md for the reproduced evaluation.
package ndss

import (
	"context"
	"io"

	"ndss/internal/core"
	"ndss/internal/corpus"
	"ndss/internal/index"
	"ndss/internal/search"
)

// BuildOptions configures index construction. See index.BuildOptions for
// field documentation; the required fields are K (number of hash
// functions) and T (minimum indexed sequence length).
type BuildOptions = index.BuildOptions

// BuildStats reports the work an index build performed.
type BuildStats = index.BuildStats

// SearchOptions configures one query. Theta is required.
type SearchOptions = search.Options

// Match is one reported near-duplicate span.
type Match = search.Match

// QueryStats describes one query's execution. Its IOBytes/IOTime/
// CPUTime split comes from a per-query I/O sink and is exact even for
// queries running concurrently (SearchBatch).
type QueryStats = search.Stats

// BatchResult is one query's outcome in a SearchBatch call.
type BatchResult = search.BatchResult

// QueryPlan is the deferral plan the staged query pipeline executes a
// query with (which inverted lists are read fully vs. probed).
type QueryPlan = search.Plan

// TextSource resolves text ids to token sequences (for verification).
type TextSource = search.TextSource

// BuildIndex builds an index directory over in-memory tokenized texts.
// Text ids are the slice indexes.
func BuildIndex(texts [][]uint32, dir string, opts BuildOptions) (*BuildStats, error) {
	return core.BuildIndex(corpus.New(texts), dir, opts)
}

// BuildIndexFromFile builds an index directory from a corpus file
// (written with WriteCorpusFile) using the out-of-core builder, suitable
// for corpora larger than memory.
func BuildIndexFromFile(corpusPath, dir string, opts BuildOptions) (*BuildStats, error) {
	return core.BuildIndexExternal(corpusPath, dir, opts)
}

// WriteCorpusFile writes tokenized texts to the binary corpus format.
func WriteCorpusFile(texts [][]uint32, path string) error {
	return corpus.WriteFile(corpus.New(texts), path)
}

// DB is an opened index ready for queries.
type DB struct {
	engine *core.Engine
	dir    string
	src    search.TextSource
}

// Open opens an index directory built by BuildIndex or
// BuildIndexFromFile.
func Open(dir string) (*DB, error) {
	engine, err := core.Open(dir, nil)
	if err != nil {
		return nil, err
	}
	return &DB{engine: engine, dir: dir}, nil
}

// AttachTexts provides the corpus content so searches can verify exact
// Jaccard similarities (SearchOptions.Verify).
func (db *DB) AttachTexts(texts [][]uint32) error {
	return db.attach(corpus.New(texts))
}

// AttachCorpusFile is AttachTexts reading from a corpus file; texts are
// fetched lazily per match.
func (db *DB) AttachCorpusFile(path string) error {
	r, err := corpus.OpenReader(path)
	if err != nil {
		return err
	}
	return db.attach(r)
}

func (db *DB) attach(src search.TextSource) error {
	engine, err := core.Open(db.dir, src)
	if err != nil {
		return err
	}
	old, oldSrc := db.engine, db.src
	db.engine = engine
	db.src = src
	err = old.Close()
	if c, ok := oldSrc.(io.Closer); ok {
		if cerr := c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Search reports every near-duplicate span of query per opts.
func (db *DB) Search(query []uint32, opts SearchOptions) ([]Match, *QueryStats, error) {
	return db.engine.Search(query, opts)
}

// SearchContext is Search honoring a context: when ctx is canceled or
// its deadline passes, the query stops before its next index read and
// returns ctx.Err(). Use it to bound query latency in services.
func (db *DB) SearchContext(ctx context.Context, query []uint32, opts SearchOptions) ([]Match, *QueryStats, error) {
	return db.engine.SearchContext(ctx, query, opts)
}

// Searcher exposes the underlying searcher for pipelines that drive
// many queries directly (e.g. the memorization evaluator).
func (db *DB) Searcher() *search.Searcher { return db.engine.Searcher() }

// TopKOptions configures SearchTopK.
type TopKOptions = search.TopKOptions

// SearchTopK returns the up-to-N most similar near-duplicate spans,
// best first.
func (db *DB) SearchTopK(query []uint32, opts TopKOptions) ([]Match, *QueryStats, error) {
	return db.engine.Searcher().SearchTopK(query, opts)
}

// SearchBatch runs many queries concurrently and returns per-query
// results in order. Every result's QueryStats are exact for that query
// at any parallelism.
func (db *DB) SearchBatch(queries [][]uint32, opts SearchOptions, parallelism int) []BatchResult {
	return db.engine.SearchBatch(queries, opts, parallelism)
}

// SearchBatchContext is SearchBatch honoring a context: once ctx is
// done, in-flight queries stop at their next cancellation checkpoint
// and unstarted queries fail immediately with ctx.Err().
func (db *DB) SearchBatchContext(ctx context.Context, queries [][]uint32, opts SearchOptions, parallelism int) []BatchResult {
	return db.engine.SearchBatchContext(ctx, queries, opts, parallelism)
}

// SearchTopKContext is SearchTopK honoring a context; see SearchContext
// for the cancellation contract.
func (db *DB) SearchTopKContext(ctx context.Context, query []uint32, opts TopKOptions) ([]Match, *QueryStats, error) {
	return db.engine.SearchTopKContext(ctx, query, opts)
}

// Explain returns the plan a query would execute with under opts,
// without reading any posting lists.
func (db *DB) Explain(query []uint32, opts SearchOptions) (*QueryPlan, error) {
	return db.engine.Explain(context.Background(), query, opts)
}

// IndexStats summarizes the opened index.
type IndexStats struct {
	K           int
	T           int
	NumTexts    int
	TotalTokens int64
	// Windows is the total number of indexed compact windows.
	Windows int64
	// SizeOnDisk is the combined inverted-file size in bytes.
	SizeOnDisk int64
}

// Stats summarizes the opened index.
func (db *DB) Stats() (IndexStats, error) {
	ix := db.engine.Index()
	size, err := ix.SizeOnDisk()
	if err != nil {
		return IndexStats{}, err
	}
	m := ix.Meta()
	return IndexStats{
		K:           m.K,
		T:           m.T,
		NumTexts:    m.NumTexts,
		TotalTokens: m.TotalTokens,
		Windows:     ix.TotalPostings(),
		SizeOnDisk:  size,
	}, nil
}

// Close releases the index files and any attached corpus file.
func (db *DB) Close() error {
	err := db.engine.Close()
	if c, ok := db.src.(io.Closer); ok {
		if cerr := c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
