package ndss

import (
	"math/rand"
	"path/filepath"
	"testing"

	"ndss/internal/corpus"
)

func publicFixture(t *testing.T) ([][]uint32, string) {
	t.Helper()
	c := corpus.MustSynthesize(corpus.SynthConfig{
		NumTexts: 30, MinLength: 40, MaxLength: 100, VocabSize: 100,
		ZipfS: 1.3, Seed: 3, DupRate: 0.4, DupSnippetLen: 24, DupMutateProb: 0.05,
	})
	texts := make([][]uint32, c.NumTexts())
	for i := range texts {
		texts[i] = c.Text(uint32(i))
	}
	dir := t.TempDir()
	if _, err := BuildIndex(texts, dir, BuildOptions{K: 16, Seed: 11, T: 10}); err != nil {
		t.Fatal(err)
	}
	return texts, dir
}

func TestPublicAPIEndToEnd(t *testing.T) {
	texts, dir := publicFixture(t)
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	st, err := db.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.K != 16 || st.T != 10 || st.NumTexts != 30 || st.Windows <= 0 || st.SizeOnDisk <= 0 {
		t.Fatalf("stats = %+v", st)
	}

	// Query with a verbatim slice of text 5.
	q := texts[5][10:30]
	matches, qs, err := db.Search(q, SearchOptions{Theta: 0.9, PrefixFilter: true})
	if err != nil {
		t.Fatal(err)
	}
	if qs.Beta != 15 { // ceil(16*0.9)
		t.Fatalf("Beta = %d", qs.Beta)
	}
	found := false
	for _, m := range matches {
		if m.TextID == 5 && m.Start <= 10 && m.End >= 29 {
			found = true
		}
	}
	if !found {
		t.Fatalf("verbatim slice not found: %+v", matches)
	}

	// Verify requires attached texts.
	if _, _, err := db.Search(q, SearchOptions{Theta: 0.9, Verify: true}); err == nil {
		t.Fatal("Verify without attachment should fail")
	}
	if err := db.AttachTexts(texts); err != nil {
		t.Fatal(err)
	}
	matches, _, err = db.Search(q, SearchOptions{Theta: 0.9, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	// Verification computes Jaccard over the merged span, which may be
	// wider than the verbatim region — it must be positive and bounded.
	for _, m := range matches {
		if m.Jaccard <= 0 || m.Jaccard > 1 {
			t.Fatalf("verified Jaccard %v out of range", m.Jaccard)
		}
	}
}

func TestPublicAPIFileWorkflow(t *testing.T) {
	c := corpus.MustSynthesize(corpus.SynthConfig{
		NumTexts: 25, MinLength: 40, MaxLength: 90, VocabSize: 80,
		ZipfS: 1.3, Seed: 8, DupRate: 0.3, DupSnippetLen: 20, DupMutateProb: 0,
	})
	texts := make([][]uint32, c.NumTexts())
	for i := range texts {
		texts[i] = c.Text(uint32(i))
	}
	dir := t.TempDir()
	corpusPath := filepath.Join(dir, "corpus.tok")
	if err := WriteCorpusFile(texts, corpusPath); err != nil {
		t.Fatal(err)
	}
	idxDir := filepath.Join(dir, "idx")
	if _, err := BuildIndexFromFile(corpusPath, idxDir, BuildOptions{
		K: 8, Seed: 2, T: 8, BatchTokens: 500,
	}); err != nil {
		t.Fatal(err)
	}
	db, err := Open(idxDir)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.AttachCorpusFile(corpusPath); err != nil {
		t.Fatal(err)
	}
	// An unmutated planted query collides on every min-hash, so finding
	// it is guaranteed (Theorem 2), not probabilistic.
	rng := rand.New(rand.NewSource(1))
	q, srcID, srcStart, ok := corpus.PlantQuery(c, 16, 0, 80, rng)
	if !ok {
		t.Fatal("plant failed")
	}
	matches, _, err := db.Search(q, SearchOptions{Theta: 0.7, PrefixFilter: true, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range matches {
		if m.TextID == srcID && m.Start <= srcStart && srcStart <= m.End {
			found = true
		}
	}
	if !found {
		t.Fatalf("planted near-duplicate at text %d pos %d not found: %+v", srcID, srcStart, matches)
	}
}

func TestOpenMissingDir(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("missing index should fail to open")
	}
}
