package ndss_test

import (
	"fmt"
	"log"
	"os"

	"ndss"
)

// A tiny corpus where text 1 embeds an edited copy of text 0's opening.
func exampleTexts() [][]uint32 {
	t0 := make([]uint32, 60)
	for i := range t0 {
		t0[i] = uint32(1000 + i)
	}
	t1 := make([]uint32, 60)
	for i := range t1 {
		t1[i] = uint32(2000 + i)
	}
	copy(t1[10:40], t0[0:30]) // lift 30 tokens...
	t1[15] = 7                // ...and edit two of them
	t1[30] = 8
	return [][]uint32{t0, t1}
}

// Example demonstrates the build-then-search workflow.
func Example() {
	texts := exampleTexts()
	dir, err := os.MkdirTemp("", "ndss-example-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	if _, err := ndss.BuildIndex(texts, dir, ndss.BuildOptions{K: 32, Seed: 1, T: 20}); err != nil {
		log.Fatal(err)
	}
	db, err := ndss.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Query with text 0's opening: both the source and the edited copy
	// in text 1 qualify at theta 0.8.
	matches, _, err := db.Search(texts[0][:30], ndss.SearchOptions{Theta: 0.8})
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range matches {
		fmt.Printf("text %d: span [%d, %d]\n", m.TextID, m.Start, m.End)
	}
	// Output:
	// text 0: span [0, 35]
	// text 1: span [6, 43]
}

// ExampleDB_SearchTopK ranks matches by similarity.
func ExampleDB_SearchTopK() {
	texts := exampleTexts()
	dir, err := os.MkdirTemp("", "ndss-topk-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	if _, err := ndss.BuildIndex(texts, dir, ndss.BuildOptions{K: 32, Seed: 1, T: 20}); err != nil {
		log.Fatal(err)
	}
	db, err := ndss.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	matches, _, err := db.SearchTopK(texts[0][:30], ndss.TopKOptions{N: 1, FloorTheta: 0.5})
	if err != nil {
		log.Fatal(err)
	}
	// The verbatim source outranks the edited copy.
	fmt.Printf("best: text %d with %d/32 collisions\n", matches[0].TextID, matches[0].Collisions)
	// Output:
	// best: text 0 with 32/32 collisions
}
