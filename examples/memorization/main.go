// Memorization evaluation (paper §5) end-to-end: synthesize a training
// corpus, index it, train language models of two capacities on it,
// sample texts from each without prompts, and measure how many generated
// sequences are near-duplicates of training data.
//
//	go run ./examples/memorization
package main

import (
	"fmt"
	"log"
	"os"

	"ndss"
	"ndss/internal/corpus"
	"ndss/internal/lm"
	"ndss/internal/memorize"
	"ndss/internal/search"
)

func main() {
	// The training corpus: web-like Zipf token statistics with some
	// naturally repeated passages.
	train := corpus.MustSynthesize(corpus.SynthConfig{
		NumTexts:      800,
		MinLength:     100,
		MaxLength:     600,
		VocabSize:     32000,
		ZipfS:         1.07,
		Seed:          1,
		DupRate:       0.15,
		DupSnippetLen: 64,
		DupMutateProb: 0.05,
	})
	texts := make([][]uint32, train.NumTexts())
	for i := range texts {
		texts[i] = train.Text(uint32(i))
	}
	fmt.Printf("training corpus: %d texts, %d tokens\n", train.NumTexts(), train.TotalTokens())

	dir, err := os.MkdirTemp("", "ndss-memorization-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	// Paper settings: t=25, k=32.
	if _, err := ndss.BuildIndex(texts, dir, ndss.BuildOptions{K: 32, Seed: 1, T: 25}); err != nil {
		log.Fatal(err)
	}
	db, err := ndss.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	if err := db.AttachTexts(texts); err != nil {
		log.Fatal(err)
	}

	// Two model capacities standing in for a small and a large LLM.
	for _, cfg := range []struct {
		name  string
		order int
	}{
		{"small  (order-4)", 4},
		{"large  (order-5)", 5},
	} {
		model, err := lm.Train(train, lm.Config{Order: cfg.order})
		if err != nil {
			log.Fatal(err)
		}
		// Unprompted top-50 sampling, 512-token texts, 32-token query
		// windows — the paper's §5 protocol.
		queries, err := memorize.GenerateQueries(model, memorize.GenConfig{
			NumTexts:    10,
			TextLength:  512,
			QueryLength: 32,
			Sampler:     lm.TopK{K: 50},
			Seed:        7,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nmodel %s: %d contexts, %d generated query windows\n",
			cfg.name, model.NumContexts(), len(queries))
		for _, theta := range []float64{1.0, 0.9, 0.8} {
			res, err := memorize.Evaluate(db.Searcher(), queries, memorize.EvalConfig{
				Options: search.Options{Theta: theta, PrefixFilter: true},
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  theta %.1f: %5.1f%% of generated windows have near-duplicates in training data\n",
				theta, res.Ratio*100)
		}
	}
}
