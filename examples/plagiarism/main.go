// Plagiarism detection: index a small document collection and check a
// suspicious submission for passages lifted (possibly with light edits)
// from the collection — the partial-plagiarism use case the paper's
// related work (ALLIGN) targets, served here by the ndss index.
//
//	go run ./examples/plagiarism
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"ndss"
	"ndss/internal/token"
)

// The document collection: public-domain style snippets.
var library = []string{
	`It was the best of times, it was the worst of times, it was the age of wisdom,
	it was the age of foolishness, it was the epoch of belief, it was the epoch of
	incredulity, it was the season of light, it was the season of darkness, it was
	the spring of hope, it was the winter of despair. We had everything before us,
	we had nothing before us, we were all going direct to heaven, we were all going
	direct the other way.`,

	`Four score and seven years ago our fathers brought forth on this continent a
	new nation, conceived in liberty, and dedicated to the proposition that all men
	are created equal. Now we are engaged in a great civil war, testing whether
	that nation, or any nation so conceived and so dedicated, can long endure. We
	are met on a great battlefield of that war.`,

	`Call me Ishmael. Some years ago, never mind how long precisely, having little
	or no money in my purse, and nothing particular to interest me on shore, I
	thought I would sail about a little and see the watery part of the world. It is
	a way I have of driving off the spleen and regulating the circulation.`,

	`In the beginning God created the heaven and the earth. And the earth was
	without form, and void, and darkness was upon the face of the deep. And the
	spirit of God moved upon the face of the waters. And God said, let there be
	light, and there was light.`,
}

// The submission: original prose around a lightly edited copy of the
// Gettysburg opening (several words changed) and an exact Dickens quote.
const submission = `My essay begins with some thoughts of my own about history
and memory, written in my own words and in my own voice. Four score and seven
years ago our ancestors brought forth upon this continent a new nation,
conceived in freedom, and dedicated to the proposition that all people are
created equal. After that borrowed passage, I return to original analysis.
It was the best of times, it was the worst of times, it was the age of wisdom,
it was the age of foolishness, it was the epoch of belief. And finally my own
conclusion, in my own words once more.`

func main() {
	// Tokenize the library with a word tokenizer so near-duplicates are
	// robust to punctuation and casing.
	tok := token.NewWordTokenizer()
	texts := make([][]uint32, len(library))
	for i, doc := range library {
		texts[i] = tok.Encode(doc)
	}

	dir, err := os.MkdirTemp("", "ndss-plagiarism-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	// T=20: flag passages of 20+ words.
	if _, err := ndss.BuildIndex(texts, dir, ndss.BuildOptions{K: 32, Seed: 1, T: 20}); err != nil {
		log.Fatal(err)
	}
	db, err := ndss.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	if err := db.AttachTexts(texts); err != nil {
		log.Fatal(err)
	}

	// Slide a window over the submission and query each chunk.
	subTokens := tok.Encode(submission)
	const window = 20
	fmt.Printf("submission: %d words; scanning %d-word windows at theta 0.6\n\n", len(subTokens), window)
	reported := map[string]bool{}
	for off := 0; off+window <= len(subTokens); off += window / 2 {
		q := subTokens[off : off+window]
		matches, _, err := db.Search(q, ndss.SearchOptions{Theta: 0.6, PrefixFilter: true, Verify: true})
		if err != nil {
			log.Fatal(err)
		}
		for _, m := range matches {
			key := fmt.Sprintf("%d-%d", m.TextID, m.Start/10)
			if reported[key] {
				continue
			}
			reported[key] = true
			passage := decode(tok, texts[m.TextID][m.Start:m.End+1])
			fmt.Printf("PLAGIARISM SUSPECT: submission words [%d, %d] match document %d\n",
				off, off+window-1, m.TextID)
			fmt.Printf("  source span [%d, %d], estimated Jaccard %.2f\n", m.Start, m.End, m.EstJaccard)
			fmt.Printf("  source text: %q\n\n", clip(passage, 90))
		}
	}
	if len(reported) == 0 {
		fmt.Println("no plagiarized passages detected")
	}
}

func decode(tok *token.WordTokenizer, ids []uint32) string {
	return tok.Decode(ids)
}

func clip(s string, n int) string {
	s = strings.Join(strings.Fields(s), " ")
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
