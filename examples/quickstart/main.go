// Quickstart: build an index over a small tokenized corpus, then find
// near-duplicates of a query sequence.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"ndss"
)

func main() {
	// A toy corpus: 200 "texts" of random tokens, where text 7 and text
	// 42 share a 40-token passage (text 42's copy has two tokens
	// changed — a near-duplicate, not an exact one).
	rng := rand.New(rand.NewSource(1))
	texts := make([][]uint32, 200)
	for i := range texts {
		texts[i] = make([]uint32, 300)
		for j := range texts[i] {
			texts[i][j] = uint32(rng.Intn(10000))
		}
	}
	passage := texts[7][100:140]
	copy(texts[42][50:90], passage)
	texts[42][60] = 9999 // two edits out of 40 tokens
	texts[42][75] = 9998

	// Offline: build the index. K is the number of min-hash functions
	// (more = sharper similarity estimates), T the minimum sequence
	// length worth reporting.
	dir, err := os.MkdirTemp("", "ndss-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	stats, err := ndss.BuildIndex(texts, dir, ndss.BuildOptions{K: 32, Seed: 1, T: 25})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d compact windows from %d texts\n", stats.Windows, len(texts))

	// Online: query with the original passage. Both the source (exact)
	// and the edited copy (near-duplicate) should surface.
	db, err := ndss.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	if err := db.AttachTexts(texts); err != nil {
		log.Fatal(err)
	}
	matches, qstats, err := db.Search(passage, ndss.SearchOptions{
		Theta:        0.8, // estimated Jaccard similarity >= 0.8
		PrefixFilter: true,
		Verify:       true, // also compute exact Jaccard per match
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query: %d tokens, needed %d/%d min-hash collisions, took %v\n",
		len(passage), qstats.Beta, qstats.K, qstats.Total)
	for _, m := range matches {
		fmt.Printf("  text %3d  span [%3d, %3d]  est. Jaccard %.2f  exact %.2f\n",
			m.TextID, m.Start, m.End, m.EstJaccard, m.Jaccard)
	}
}
