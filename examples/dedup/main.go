// Train/test contamination scan: given a training corpus and a
// benchmark (test) set, flag test examples whose content has
// near-duplicates in the training data — the decontamination /
// deduplication workflow that motivates near-duplicate search over LLM
// corpora (near-duplicates are far more pervasive than the exact
// duplicates existing dedup tools catch).
//
//	go run ./examples/dedup
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"ndss"
	"ndss/internal/corpus"
)

func main() {
	// Training corpus.
	train := corpus.MustSynthesize(corpus.SynthConfig{
		NumTexts:      1000,
		MinLength:     100,
		MaxLength:     500,
		VocabSize:     32000,
		ZipfS:         1.07,
		Seed:          5,
		DupRate:       0.1,
		DupSnippetLen: 64,
		DupMutateProb: 0.05,
	})
	texts := make([][]uint32, train.NumTexts())
	for i := range texts {
		texts[i] = train.Text(uint32(i))
	}

	// Test set: 30 clean examples plus 10 contaminated ones — snippets
	// lifted from training texts with light edits (5% token mutations),
	// which exact-match dedup would miss.
	rng := rand.New(rand.NewSource(42))
	type testExample struct {
		tokens       []uint32
		contaminated bool
	}
	var testSet []testExample
	for i := 0; i < 30; i++ {
		ex := make([]uint32, 64)
		for j := range ex {
			ex[j] = uint32(rng.Intn(32000))
		}
		testSet = append(testSet, testExample{tokens: ex})
	}
	for i := 0; i < 10; i++ {
		q, _, _, ok := corpus.PlantQuery(train, 64, 0.05, 32000, rng)
		if !ok {
			log.Fatal("failed to plant contaminated example")
		}
		testSet = append(testSet, testExample{tokens: q, contaminated: true})
	}
	rng.Shuffle(len(testSet), func(i, j int) { testSet[i], testSet[j] = testSet[j], testSet[i] })

	dir, err := os.MkdirTemp("", "ndss-dedup-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	if _, err := ndss.BuildIndex(texts, dir, ndss.BuildOptions{K: 32, Seed: 1, T: 25}); err != nil {
		log.Fatal(err)
	}
	db, err := ndss.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	fmt.Printf("scanning %d test examples against %d training texts (theta 0.8)\n\n",
		len(testSet), train.NumTexts())
	var truePos, falsePos, falseNeg int
	for i, ex := range testSet {
		matches, _, err := db.Search(ex.tokens, ndss.SearchOptions{Theta: 0.8, PrefixFilter: true})
		if err != nil {
			log.Fatal(err)
		}
		flagged := len(matches) > 0
		switch {
		case flagged && ex.contaminated:
			truePos++
			fmt.Printf("  test #%02d CONTAMINATED: near-duplicate in training text %d [%d, %d]\n",
				i, matches[0].TextID, matches[0].Start, matches[0].End)
		case flagged && !ex.contaminated:
			falsePos++
			fmt.Printf("  test #%02d flagged but was generated clean (coincidental overlap)\n", i)
		case !flagged && ex.contaminated:
			falseNeg++
			fmt.Printf("  test #%02d MISSED: contaminated but not flagged\n", i)
		}
	}
	fmt.Printf("\ncontamination scan: %d found, %d missed, %d false alarms (of 10 planted)\n",
		truePos, falseNeg, falsePos)
}
