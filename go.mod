module ndss

go 1.22
