package ndss

import (
	"path/filepath"
	"testing"
)

// Error-path coverage for the public facade.

func TestAttachCorpusFileMissing(t *testing.T) {
	_, dir := publicFixture(t)
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.AttachCorpusFile(filepath.Join(t.TempDir(), "missing.tok")); err == nil {
		t.Fatal("attaching a missing corpus file should fail")
	}
	// The DB must remain usable after a failed attach.
	texts, _ := publicFixtureTexts(t)
	if _, _, err := db.Search(texts[0][:12], SearchOptions{Theta: 0.9}); err != nil {
		t.Fatalf("search after failed attach: %v", err)
	}
}

// publicFixtureTexts re-derives the fixture corpus (same seed).
func publicFixtureTexts(t *testing.T) ([][]uint32, bool) {
	t.Helper()
	texts, _ := publicFixture(t)
	return texts, true
}

func TestWriteCorpusFileBadPath(t *testing.T) {
	if err := WriteCorpusFile([][]uint32{{1}}, filepath.Join(t.TempDir(), "no", "such", "dir", "c.tok")); err == nil {
		t.Fatal("writing to a missing directory should fail")
	}
}

func TestBuildIndexBadOptions(t *testing.T) {
	if _, err := BuildIndex([][]uint32{{1, 2, 3}}, t.TempDir(), BuildOptions{K: 0, T: 5}); err == nil {
		t.Fatal("K=0 should fail")
	}
	if _, err := BuildIndexFromFile(filepath.Join(t.TempDir(), "missing.tok"), t.TempDir(), BuildOptions{K: 1, T: 5}); err == nil {
		t.Fatal("missing corpus file should fail")
	}
}

func TestSearchBatchFacade(t *testing.T) {
	texts, dir := publicFixture(t)
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	queries := [][]uint32{texts[0][:12], texts[1][:12], texts[2][:12]}
	results := db.SearchBatch(queries, SearchOptions{Theta: 0.9}, 2)
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("query %d: %v", i, r.Err)
		}
		// A verbatim prefix query must at least find its own text.
		found := false
		for _, m := range r.Matches {
			if m.TextID == uint32(i) {
				found = true
			}
		}
		if !found {
			t.Fatalf("query %d did not find its own text", i)
		}
	}
}

func TestSearchTopKFacade(t *testing.T) {
	texts, dir := publicFixture(t)
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	ms, _, err := db.SearchTopK(texts[3][:15], TopKOptions{N: 3, FloorTheta: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) == 0 || len(ms) > 3 {
		t.Fatalf("got %d matches", len(ms))
	}
	for i := 1; i < len(ms); i++ {
		if ms[i].Collisions > ms[i-1].Collisions {
			t.Fatal("top-k not sorted by collisions")
		}
	}
}
