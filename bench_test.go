package ndss

// One benchmark per paper table/figure (see DESIGN.md's per-experiment
// index). These are the testing.B counterparts of cmd/ndss-bench: small
// fixed workloads whose custom metrics (windows, bytes, matches) mirror
// the series each figure plots. Full parameter sweeps live in
// cmd/ndss-bench.

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"ndss/internal/baseline"
	"ndss/internal/corpus"
	"ndss/internal/hash"
	"ndss/internal/index"
	"ndss/internal/lm"
	"ndss/internal/memorize"
	"ndss/internal/rmq"
	"ndss/internal/search"
	"ndss/internal/window"
)

// benchCorpus returns a shared web-like corpus (built once).
var benchCorpus = sync.OnceValue(func() *corpus.Corpus {
	return corpus.MustSynthesize(corpus.SynthConfig{
		NumTexts:      300,
		MinLength:     100,
		MaxLength:     700,
		VocabSize:     32000,
		ZipfS:         1.07,
		Seed:          1,
		DupRate:       0.15,
		DupSnippetLen: 64,
		DupMutateProb: 0.05,
	})
})

// benchIndexes caches one opened index per (k, t) so query benchmarks
// don't pay the build repeatedly.
var (
	benchIdxMu sync.Mutex
	benchIdx   = map[string]*index.Index{}
)

func benchIndexFor(b *testing.B, k, t int) *index.Index {
	b.Helper()
	key := fmt.Sprintf("k%d-t%d", k, t)
	benchIdxMu.Lock()
	defer benchIdxMu.Unlock()
	if ix, ok := benchIdx[key]; ok {
		return ix
	}
	dir, err := os.MkdirTemp("", "ndss-bench-idx-*")
	if err != nil {
		b.Fatal(err)
	}
	if _, err := index.Build(benchCorpus(), dir, index.BuildOptions{K: k, Seed: 3, T: t}); err != nil {
		b.Fatal(err)
	}
	ix, err := index.Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	benchIdx[key] = ix
	return ix
}

func benchQueries(n, length int, seed int64) [][]uint32 {
	c := benchCorpus()
	rng := rand.New(rand.NewSource(seed))
	queries := make([][]uint32, 0, n)
	for len(queries) < n {
		if q, _, _, ok := corpus.PlantQuery(c, length, 0.1, 32000, rng); ok {
			queries = append(queries, q)
		}
	}
	return queries
}

// BenchmarkFig2_WindowsVsThreshold measures compact-window generation
// across length thresholds (Fig 2(a-b)); windows/op is the figure's
// y-axis.
func BenchmarkFig2_WindowsVsThreshold(b *testing.B) {
	c := benchCorpus()
	fam := hash.MustNewFamily(1, 7)
	for _, t := range []int{25, 50, 100, 200} {
		b.Run(fmt.Sprintf("t=%d", t), func(b *testing.B) {
			var vals []uint64
			var ws []window.Window
			var windows int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				windows = 0
				for id := 0; id < c.NumTexts(); id++ {
					vals = window.Hashes(c.Text(uint32(id)), fam.Func(0), vals)
					ws = window.GenerateLinear(vals, t, ws[:0])
					windows += int64(len(ws))
				}
			}
			b.ReportMetric(float64(windows), "windows")
		})
	}
}

// BenchmarkFig2_WindowsVsCorpusSize shows linear window scaling with
// corpus size (Fig 2(c-d)).
func BenchmarkFig2_WindowsVsCorpusSize(b *testing.B) {
	fam := hash.MustNewFamily(1, 7)
	for _, mult := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("size=%dx", mult), func(b *testing.B) {
			c := corpus.MustSynthesize(corpus.SynthConfig{
				NumTexts: 100 * mult, MinLength: 100, MaxLength: 700,
				VocabSize: 32000, ZipfS: 1.07, Seed: 2,
			})
			var vals []uint64
			var ws []window.Window
			var windows int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				windows = 0
				for id := 0; id < c.NumTexts(); id++ {
					vals = window.Hashes(c.Text(uint32(id)), fam.Func(0), vals)
					ws = window.GenerateLinear(vals, 100, ws[:0])
					windows += int64(len(ws))
				}
			}
			b.ReportMetric(float64(windows), "windows")
		})
	}
}

// BenchmarkFig2_IndexSize builds full indexes and reports bytes on disk
// (Fig 2(e-h)).
func BenchmarkFig2_IndexSize(b *testing.B) {
	c := benchCorpus()
	for _, t := range []int{50, 100} {
		b.Run(fmt.Sprintf("t=%d", t), func(b *testing.B) {
			var size int64
			for i := 0; i < b.N; i++ {
				dir := b.TempDir()
				stats, err := index.Build(c, dir, index.BuildOptions{K: 1, Seed: 3, T: t})
				if err != nil {
					b.Fatal(err)
				}
				size = stats.BytesWritten
			}
			b.ReportMetric(float64(size), "index-bytes")
		})
	}
}

// BenchmarkFig2_IndexTime measures full index builds (Fig 2(i-l)); the
// gen/io split is reported as metrics.
func BenchmarkFig2_IndexTime(b *testing.B) {
	c := benchCorpus()
	for _, k := range []int{1, 4} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			var gen, io float64
			for i := 0; i < b.N; i++ {
				dir := b.TempDir()
				stats, err := index.Build(c, dir, index.BuildOptions{K: k, Seed: 3, T: 50})
				if err != nil {
					b.Fatal(err)
				}
				gen = float64(stats.GenTime.Microseconds())
				io = float64(stats.IOTime.Microseconds())
			}
			b.ReportMetric(gen, "gen-us")
			b.ReportMetric(io, "io-us")
		})
	}
}

// BenchmarkFig3_QueryVsTheta measures per-query latency across
// similarity thresholds (Fig 3(a-b)).
func BenchmarkFig3_QueryVsTheta(b *testing.B) {
	ix := benchIndexFor(b, 32, 25)
	s := search.New(ix, benchCorpus())
	queries := benchQueries(32, 64, 5)
	for _, theta := range []float64{0.7, 0.8, 0.9, 1.0} {
		b.Run(fmt.Sprintf("theta=%.1f", theta), func(b *testing.B) {
			matches := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ms, _, err := s.Search(queries[i%len(queries)], search.Options{Theta: theta, PrefixFilter: true})
				if err != nil {
					b.Fatal(err)
				}
				matches += len(ms)
			}
			b.ReportMetric(float64(matches)/float64(b.N), "matches/op")
		})
	}
}

// BenchmarkFig3_QueryVsCorpusSize shows latency scaling with corpus
// size (Fig 3(c)).
func BenchmarkFig3_QueryVsCorpusSize(b *testing.B) {
	for _, mult := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("size=%dx", mult), func(b *testing.B) {
			c := corpus.MustSynthesize(corpus.SynthConfig{
				NumTexts: 100 * mult, MinLength: 100, MaxLength: 700,
				VocabSize: 32000, ZipfS: 1.07, Seed: 2,
				DupRate: 0.15, DupSnippetLen: 64, DupMutateProb: 0.05,
			})
			dir := b.TempDir()
			if _, err := index.Build(c, dir, index.BuildOptions{K: 32, Seed: 3, T: 25}); err != nil {
				b.Fatal(err)
			}
			ix, err := index.Open(dir)
			if err != nil {
				b.Fatal(err)
			}
			defer ix.Close()
			s := search.New(ix, c)
			rng := rand.New(rand.NewSource(4))
			var queries [][]uint32
			for len(queries) < 16 {
				if q, _, _, ok := corpus.PlantQuery(c, 64, 0.1, 32000, rng); ok {
					queries = append(queries, q)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := s.Search(queries[i%len(queries)], search.Options{Theta: 0.8, PrefixFilter: true}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig3_PrefixLength sweeps the long-list cutoff fraction
// (Fig 3(d)).
func BenchmarkFig3_PrefixLength(b *testing.B) {
	ix := benchIndexFor(b, 32, 25)
	s := search.New(ix, benchCorpus())
	queries := benchQueries(32, 64, 6)
	for _, frac := range []float64{0.05, 0.10, 0.20} {
		cutoff := search.CutoffForTopFraction(ix, frac)
		b.Run(fmt.Sprintf("prefix=%.0f%%", frac*100), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := s.Search(queries[i%len(queries)], search.Options{
					Theta: 0.8, PrefixFilter: true, LongListThreshold: cutoff,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig3_QueryExternal queries an index built with the
// out-of-core builder (Fig 3(e-f)).
func BenchmarkFig3_QueryExternal(b *testing.B) {
	c := benchCorpus()
	dir := b.TempDir()
	corpusPath := filepath.Join(dir, "c.tok")
	if err := corpus.WriteFile(c, corpusPath); err != nil {
		b.Fatal(err)
	}
	r, err := corpus.OpenReader(corpusPath)
	if err != nil {
		b.Fatal(err)
	}
	idxDir := filepath.Join(dir, "idx")
	if err := os.MkdirAll(idxDir, 0o755); err != nil {
		b.Fatal(err)
	}
	if _, err := index.BuildExternal(r, idxDir, index.BuildOptions{
		K: 16, Seed: 3, T: 25, MemoryBudget: 16 << 20,
	}); err != nil {
		b.Fatal(err)
	}
	r.Close()
	ix, err := index.Open(idxDir)
	if err != nil {
		b.Fatal(err)
	}
	defer ix.Close()
	s := search.New(ix, c)
	queries := benchQueries(32, 64, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.Search(queries[i%len(queries)], search.Options{Theta: 0.8, PrefixFilter: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3_QueryVsLengthThreshold shows latency inversely
// proportional to the length threshold (Fig 3(g-h)).
func BenchmarkFig3_QueryVsLengthThreshold(b *testing.B) {
	queries := benchQueries(32, 128, 8)
	for _, t := range []int{25, 50, 100} {
		ix := benchIndexFor(b, 32, t)
		s := search.New(ix, benchCorpus())
		b.Run(fmt.Sprintf("t=%d", t), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := s.Search(queries[i%len(queries)], search.Options{Theta: 0.8, PrefixFilter: true}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchModel trains the shared evaluation model once.
var benchModel = sync.OnceValue(func() *lm.Model {
	m, err := lm.Train(benchCorpus(), lm.Config{Order: 4})
	if err != nil {
		panic(err)
	}
	return m
})

// BenchmarkFig4_MemorizationVsTheta runs the §5 pipeline across
// thresholds (Fig 4(a,c)); memorized-pct is the figure's y-axis.
func BenchmarkFig4_MemorizationVsTheta(b *testing.B) {
	ix := benchIndexFor(b, 32, 25)
	s := search.New(ix, benchCorpus())
	queries, err := memorize.GenerateQueries(benchModel(), memorize.GenConfig{
		NumTexts: 4, TextLength: 256, QueryLength: 32, Sampler: lm.TopK{K: 50}, Seed: 21,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, theta := range []float64{1.0, 0.9, 0.8} {
		b.Run(fmt.Sprintf("theta=%.1f", theta), func(b *testing.B) {
			var ratio float64
			for i := 0; i < b.N; i++ {
				res, err := memorize.Evaluate(s, queries, memorize.EvalConfig{
					Options: search.Options{Theta: theta, PrefixFilter: true},
				})
				if err != nil {
					b.Fatal(err)
				}
				ratio = res.Ratio
			}
			b.ReportMetric(ratio*100, "memorized-pct")
		})
	}
}

// BenchmarkFig4_MemorizationVsWidth sweeps the sliding-window width
// (Fig 4(b,d)).
func BenchmarkFig4_MemorizationVsWidth(b *testing.B) {
	ix := benchIndexFor(b, 32, 25)
	s := search.New(ix, benchCorpus())
	for _, x := range []int{32, 64, 128} {
		queries, err := memorize.GenerateQueries(benchModel(), memorize.GenConfig{
			NumTexts: 4, TextLength: 256, QueryLength: x, Sampler: lm.TopK{K: 50}, Seed: 22,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("x=%d", x), func(b *testing.B) {
			var ratio float64
			for i := 0; i < b.N; i++ {
				res, err := memorize.Evaluate(s, queries, memorize.EvalConfig{
					Options: search.Options{Theta: 0.8, PrefixFilter: true},
				})
				if err != nil {
					b.Fatal(err)
				}
				ratio = res.Ratio
			}
			b.ReportMetric(ratio*100, "memorized-pct")
		})
	}
}

// BenchmarkTheorem1_WindowCount validates the 2(n+1)/(t+1)-1 window
// count at generation speed over random permutations.
func BenchmarkTheorem1_WindowCount(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n, t := 100000, 100
	vals := make([]uint64, n)
	for i := range vals {
		vals[i] = rng.Uint64()
	}
	var count int
	b.SetBytes(int64(4 * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count = len(window.GenerateLinear(vals, t, nil))
	}
	b.ReportMetric(float64(count), "windows")
	b.ReportMetric(window.ExpectedCount(n, t), "expected")
}

// BenchmarkAblation_RMQ compares window-generation engines (DESIGN.md
// AB1): the stack generator, the paper's O(1)-RMQ recursion, and
// ALIGN's segment tree.
func BenchmarkAblation_RMQ(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	n := 1 << 17
	vals := make([]uint64, n)
	for i := range vals {
		vals[i] = rng.Uint64()
	}
	engines := []struct {
		name string
		gen  func() int
	}{
		{"stack", func() int { return len(window.GenerateLinear(vals, 50, nil)) }},
		{"rmq-linear", func() int {
			return len(window.Generate(vals, 50, func(x []uint64) rmq.RMQ { return rmq.NewLinear(x) }, nil))
		}},
		{"rmq-sparse", func() int {
			return len(window.Generate(vals, 50, func(x []uint64) rmq.RMQ { return rmq.NewSparse(x) }, nil))
		}},
		{"segtree-ALIGN", func() int {
			return len(window.Generate(vals, 50, func(x []uint64) rmq.RMQ { return rmq.NewSegmentTree(x) }, nil))
		}},
	}
	for _, e := range engines {
		b.Run(e.name, func(b *testing.B) {
			b.SetBytes(int64(4 * n))
			for i := 0; i < b.N; i++ {
				_ = e.gen()
			}
		})
	}
}

// BenchmarkAblation_PrefixFilter compares queries with and without
// prefix filtering (DESIGN.md AB2).
func BenchmarkAblation_PrefixFilter(b *testing.B) {
	ix := benchIndexFor(b, 32, 25)
	s := search.New(ix, benchCorpus())
	queries := benchQueries(32, 64, 9)
	for _, v := range []struct {
		name string
		opts search.Options
	}{
		{"off", search.Options{Theta: 0.8}},
		{"on", search.Options{Theta: 0.8, PrefixFilter: true}},
	} {
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := s.Search(queries[i%len(queries)], v.opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBaseline_Comparison pits the index against the brute-force
// scan and seed-and-extend on a small corpus (DESIGN.md AB3).
func BenchmarkBaseline_Comparison(b *testing.B) {
	c := corpus.MustSynthesize(corpus.SynthConfig{
		NumTexts: 40, MinLength: 50, MaxLength: 120, VocabSize: 2000,
		ZipfS: 1.1, Seed: 19, DupRate: 0.4, DupSnippetLen: 32, DupMutateProb: 0.05,
	})
	const k, seed, t = 32, 3, 10
	dir := b.TempDir()
	if _, err := index.Build(c, dir, index.BuildOptions{K: k, Seed: seed, T: t}); err != nil {
		b.Fatal(err)
	}
	ix, err := index.Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	defer ix.Close()
	s := search.New(ix, c)
	fam := hash.MustNewFamily(k, seed)
	se := baseline.NewSeedExtend(c, 8)
	rng := rand.New(rand.NewSource(29))
	q, _, _, ok := corpus.PlantQuery(c, 24, 0.15, 2000, rng)
	if !ok {
		b.Fatal("plant failed")
	}
	b.Run("index", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := s.Search(q, search.Options{Theta: 0.8, PrefixFilter: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("brute-force", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = baseline.MinHashScan(c, fam, q, 0.8, t)
		}
	})
	b.Run("seed-extend", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = se.Search(q, 0.8, t)
		}
	})
}
